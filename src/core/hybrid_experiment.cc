#include "core/hybrid_experiment.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "core/hybrid_fault.h"
#include "core/throughput_experiment.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "flowsim/maxmin.h"
#include "sim/boundary.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/walltime.h"

namespace spineless::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// A fluid flow is complete when less than an eighth of a byte remains —
// the FlowLevelSimulator retirement threshold, reused verbatim.
constexpr double kRemainingEps = 0.125;
// Full-graph path sampling: below this switch count the mode-aware
// PathSampler (ECMP / Shortest-Union tables) is affordable; above it the
// all-pairs table build is O(V*E) per destination and a BFS walk sampler
// with a bounded distance-array cache takes over.
constexpr topo::NodeId kPathTableThreshold = 4096;
constexpr std::uint64_t kPathStreamSalt = 0x70617468ULL;    // "path"
constexpr std::uint64_t kBoundarySalt = 0x424e4459ULL;      // "BNDY"
constexpr std::uint64_t kRepathSalt = 0x72657061ULL;        // "repa"
// HYBR snapshot payload version (sim::write_section_version): 2 added the
// whole-network fault state (per-flow routes/stalls, link states, outage
// and re-pin logs) in PR 8.
constexpr std::uint32_t kHybridSectionVersion = 2;

// --- Fluid resource indexing (the FluidNetwork layout, full graph) -------
// host uplink h | host downlink nh+h | directed link 2nh + 2l + dir.
struct ResourceSpace {
  std::int64_t num_hosts = 0;
  std::int64_t num_links = 0;
  int host_up(topo::HostId h) const { return static_cast<int>(h); }
  int host_down(topo::HostId h) const {
    return static_cast<int>(num_hosts + h);
  }
  int link(topo::LinkId l, bool a_to_b) const {
    return static_cast<int>(2 * num_hosts + 2 * l + (a_to_b ? 0 : 1));
  }
  std::size_t total() const {
    return static_cast<std::size_t>(2 * num_hosts + 2 * num_links);
  }
};

// First link between adjacent switches (parallel links: lowest port index —
// deterministic).
topo::LinkId link_between(const topo::Graph& g, topo::NodeId u,
                          topo::NodeId v) {
  for (const topo::Port& p : g.neighbors(u)) {
    if (p.neighbor == v) return p.link;
  }
  SPINELESS_CHECK_MSG(false, "path step between non-adjacent switches");
  return topo::kInvalidLink;
}

// Shortest-path walk sampler for graphs too large for PathSampler's
// all-pairs tables: BFS distances from the destination (cached, bounded),
// then a uniform walk over distance-decreasing neighbors — the fluid
// analogue of hop-by-hop ECMP on a huge graph.
class BfsSampler {
 public:
  explicit BfsSampler(const topo::Graph& g) : g_(g) {}

  routing::Path sample(topo::NodeId src, topo::NodeId dst, Rng& rng) {
    const std::vector<std::int32_t>& dist = dist_to(dst);
    SPINELESS_CHECK_MSG(dist[static_cast<std::size_t>(src)] >= 0,
                        "graph is disconnected");
    routing::Path path{src};
    topo::NodeId cur = src;
    while (cur != dst) {
      const std::int32_t d = dist[static_cast<std::size_t>(cur)];
      scratch_.clear();
      for (const topo::Port& p : g_.neighbors(cur)) {
        if (dist[static_cast<std::size_t>(p.neighbor)] == d - 1)
          scratch_.push_back(p.neighbor);
      }
      cur = scratch_[rng.uniform(scratch_.size())];
      path.push_back(cur);
    }
    return path;
  }

 private:
  // FIFO-bounded distance cache: skewed TMs concentrate destinations on few
  // racks, so a handful of arrays covers most flows; the bound keeps worst-
  // case memory at kMaxCached * num_switches ints. Purely a speed cache —
  // eviction can never change a sampled path.
  static constexpr std::size_t kMaxCached = 64;

  const std::vector<std::int32_t>& dist_to(topo::NodeId dst) {
    for (const auto& e : cache_) {
      if (e.first == dst) return e.second;
    }
    std::vector<std::int32_t> dist(
        static_cast<std::size_t>(g_.num_switches()), -1);
    std::vector<topo::NodeId> frontier{dst};
    dist[static_cast<std::size_t>(dst)] = 0;
    std::vector<topo::NodeId> next;
    while (!frontier.empty()) {
      next.clear();
      for (topo::NodeId n : frontier) {
        const std::int32_t d = dist[static_cast<std::size_t>(n)];
        for (const topo::Port& p : g_.neighbors(n)) {
          auto& dn = dist[static_cast<std::size_t>(p.neighbor)];
          if (dn < 0) {
            dn = d + 1;
            next.push_back(p.neighbor);
          }
        }
      }
      frontier.swap(next);
    }
    if (cache_.size() >= kMaxCached) cache_.erase(cache_.begin());
    cache_.emplace_back(dst, std::move(dist));
    return cache_.back().second;
  }

  const topo::Graph& g_;
  std::vector<std::pair<topo::NodeId, std::vector<std::int32_t>>> cache_;
  std::vector<topo::NodeId> scratch_;
};

enum class FlowKind : std::uint8_t { kInternal, kBoundary, kExternal };

// One flow's co-simulation plan, derived from its sampled full-graph path.
struct FlowPlan {
  FlowKind kind = FlowKind::kExternal;
  std::vector<int> resources;       // fluid resources (boundary/external)
  topo::HostId pkt_src = -1;        // region host ids (boundary only)
  topo::HostId pkt_dst = -1;
  topo::LinkId boundary_link = topo::kInvalidLink;  // phase-key component
  // Cut indices of the gateways this flow is pinned to (-1: that end
  // terminates on a real region host). The fault model re-pins these when
  // a cut link fails.
  std::int32_t entry_cut = -1;
  std::int32_t exit_cut = -1;
};

int cut_index_of(const topo::RegionCut& cut, topo::LinkId l) {
  const auto it = std::lower_bound(
      cut.cut.begin(), cut.cut.end(), l,
      [](const topo::CutLink& c, topo::LinkId id) { return c.link < id; });
  SPINELESS_CHECK(it != cut.cut.end() && it->link == l);
  return static_cast<int>(it - cut.cut.begin());
}

FlowPlan classify_flow(const topo::Graph& g, const topo::RegionCut& cut,
                       const topo::RegionGraph& rg, const ResourceSpace& rs,
                       const workload::FlowSpec& f,
                       const routing::Path& path) {
  const std::size_t len = path.size();
  std::size_t i0 = len;
  for (std::size_t i = 0; i < len; ++i) {
    if (cut.contains(path[i])) {
      i0 = i;
      break;
    }
  }
  FlowPlan plan;
  const auto add_edge = [&](std::size_t t) {
    const topo::LinkId l = link_between(g, path[t], path[t + 1]);
    plan.resources.push_back(rs.link(l, g.link(l).a == path[t]));
  };
  if (i0 == len) {  // no hot switch: pure fluid
    plan.kind = FlowKind::kExternal;
    plan.resources.push_back(rs.host_up(f.src));
    for (std::size_t t = 0; t + 1 < len; ++t) add_edge(t);
    plan.resources.push_back(rs.host_down(f.dst));
    return plan;
  }
  std::size_t j0 = i0;
  while (j0 + 1 < len && cut.contains(path[j0 + 1])) ++j0;
  if (i0 == 0 && j0 == len - 1) {  // whole path hot: full TCP
    plan.kind = FlowKind::kInternal;
    return plan;
  }

  plan.kind = FlowKind::kBoundary;
  if (i0 == 0) {
    plan.pkt_src = rg.host_to_region[static_cast<std::size_t>(f.src)];
  } else {
    const topo::LinkId entry = link_between(g, path[i0 - 1], path[i0]);
    plan.entry_cut = cut_index_of(cut, entry);
    plan.pkt_src = rg.gateway_host[static_cast<std::size_t>(plan.entry_cut)];
    plan.boundary_link = entry;
    // Fluid half upstream of the region: src NIC + every edge strictly
    // before the entry cut link (the cut link itself is modeled by the
    // gateway host's NIC inside the packet region).
    plan.resources.push_back(rs.host_up(f.src));
    for (std::size_t t = 0; t + 1 < i0; ++t) add_edge(t);
  }
  if (j0 == len - 1) {
    plan.pkt_dst = rg.host_to_region[static_cast<std::size_t>(f.dst)];
  } else {
    const topo::LinkId exit = link_between(g, path[j0], path[j0 + 1]);
    plan.exit_cut = cut_index_of(cut, exit);
    plan.pkt_dst = rg.gateway_host[static_cast<std::size_t>(plan.exit_cut)];
    if (plan.boundary_link == topo::kInvalidLink) plan.boundary_link = exit;
    // Fluid half downstream: every edge strictly after the exit cut link
    // (re-entries into the hot set past the first run stay fluid — a
    // deliberate approximation) + dst NIC.
    for (std::size_t t = j0 + 1; t + 1 < len; ++t) add_edge(t);
    plan.resources.push_back(rs.host_down(f.dst));
  }
  if (plan.pkt_src == plan.pkt_dst) {
    // Degenerate cut (entry and exit collapse onto one gateway): fall back
    // to pure fluid over the whole path rather than injecting self-traffic.
    plan = FlowPlan{};
    plan.kind = FlowKind::kExternal;
    plan.resources.push_back(rs.host_up(f.src));
    for (std::size_t t = 0; t + 1 < len; ++t) add_edge(t);
    plan.resources.push_back(rs.host_down(f.dst));
  }
  return plan;
}

// --- The fluid half + boundary bookkeeping, checkpointed as "HYBR" -------

struct FluidFlowState {
  // Static (reconstructed, not serialized):
  std::size_t spec = 0;             // index into the flow list
  FlowKind kind = FlowKind::kExternal;
  std::int64_t bytes = 0;
  Time start = 0;
  int boundary = -1;                // index into sources_/sinks_

  // Dynamic (HYBR section, version 2):
  std::vector<int> resources;       // CURRENT fluid route (re-paths move it)
  double remaining = 0;
  double rate = 0;
  double cap = kInf;
  double cap_at_solve = kInf;
  std::int64_t delivered_last = 0;
  Time finish = -1;
  bool active = false;
  bool done = false;
  // Whole-network fault state: current gateway pinning (boundary flows;
  // re-pins move these off the FlowPlan values), the re-path/re-pin
  // generation feeding the deterministic per-flow RNG streams, and stall
  // accounting for flows with no surviving path.
  std::int32_t entry_cut = -1;
  std::int32_t exit_cut = -1;
  std::uint32_t generation = 0;
  bool stalled = false;
  Time stall_since = -1;
  double stalled_s = 0;
};

// One window-quantized fluid fault event, derived from a FaultPlan action
// at partition time. The full list is a pure function of (plan, BFD
// timing); only a cursor into it is checkpointed.
struct FluidEvent {
  enum class Kind : std::uint8_t {
    kDown,       // capacity -> 0 (external) / gateway dark (cut)
    kRoutedOut,  // detection + repair: re-path / re-pin off the link
    kUp,         // capacity restored (external)
    kRoutedIn,   // link back in the tables: stalled flows retry
    kDegrade,    // capacity *= factor (external only)
    kGray,       // capacity *= expected goodput fraction (external only)
  };
  Kind kind = Kind::kDown;
  Time at = 0;  // nominal instant; applied at the first window ending past it
  topo::LinkId link = topo::kInvalidLink;
  double factor = 1.0;   // kDegrade / kGray (1.0 = restore)
  bool boundary = false; // cut link
};

// Shortest-path sampler over the *surviving cold* subgraph: BFS distances
// from the destination excluding hot switches and routed-out links, then a
// uniform walk over distance-decreasing neighbors, exactly like BfsSampler.
// The distance cache is invalidated whenever the surviving-link set
// changes; eviction/invalidations can never change a sampled path.
class FaultBfs {
 public:
  FaultBfs(const topo::Graph& g, const topo::RegionCut* cut)
      : g_(g), cut_(cut) {}

  void invalidate() { cache_.clear(); }

  // Empty path = dst unreachable from src through surviving cold switches.
  routing::Path sample(topo::NodeId src, topo::NodeId dst, Rng& rng,
                       const std::vector<char>& link_dead) {
    link_dead_ = &link_dead;
    const std::vector<std::int32_t>& dist = dist_to(dst);
    if (dist[static_cast<std::size_t>(src)] < 0) return {};
    routing::Path path{src};
    topo::NodeId cur = src;
    while (cur != dst) {
      const std::int32_t d = dist[static_cast<std::size_t>(cur)];
      scratch_.clear();
      for (const topo::Port& p : g_.neighbors(cur)) {
        if (excluded(p)) continue;
        if (dist[static_cast<std::size_t>(p.neighbor)] == d - 1)
          scratch_.push_back(p.neighbor);
      }
      cur = scratch_[rng.uniform(scratch_.size())];
      path.push_back(cur);
    }
    return path;
  }

 private:
  static constexpr std::size_t kMaxCached = 16;

  bool excluded(const topo::Port& p) const {
    if (cut_ != nullptr && cut_->contains(p.neighbor)) return true;
    return (*link_dead_)[static_cast<std::size_t>(p.link)] != 0;
  }

  const std::vector<std::int32_t>& dist_to(topo::NodeId dst) {
    for (const auto& e : cache_) {
      if (e.first == dst) return e.second;
    }
    std::vector<std::int32_t> dist(
        static_cast<std::size_t>(g_.num_switches()), -1);
    std::vector<topo::NodeId> frontier{dst};
    dist[static_cast<std::size_t>(dst)] = 0;
    std::vector<topo::NodeId> next;
    while (!frontier.empty()) {
      next.clear();
      for (topo::NodeId n : frontier) {
        const std::int32_t d = dist[static_cast<std::size_t>(n)];
        for (const topo::Port& p : g_.neighbors(n)) {
          if (excluded(p)) continue;
          auto& dn = dist[static_cast<std::size_t>(p.neighbor)];
          if (dn < 0) {
            dn = d + 1;
            next.push_back(p.neighbor);
          }
        }
      }
      frontier.swap(next);
    }
    if (cache_.size() >= kMaxCached) cache_.erase(cache_.begin());
    cache_.emplace_back(dst, std::move(dist));
    return cache_.back().second;
  }

  const topo::Graph& g_;
  const topo::RegionCut* cut_;
  const std::vector<char>* link_dead_ = nullptr;
  std::vector<std::pair<topo::NodeId, std::vector<std::int32_t>>> cache_;
  std::vector<topo::NodeId> scratch_;
};

class HybridLoop : public sim::Checkpointable {
 public:
  HybridLoop(const HybridConfig& cfg, std::vector<double> capacities)
      : cfg_(cfg), capacities_(std::move(capacities)) {}

  void add_fluid_flow(FluidFlowState s) {
    s.remaining = static_cast<double>(s.bytes);
    fluid_.push_back(std::move(s));
  }
  void add_boundary(std::unique_ptr<sim::BoundarySource> src,
                    std::unique_ptr<sim::BoundarySink> sink) {
    sources_.push_back(std::move(src));
    sinks_.push_back(std::move(sink));
  }
  int num_boundaries() const { return static_cast<int>(sources_.size()); }

  // Arms the fluid/boundary half of a whole-network FaultPlan (the
  // window-quantized event list from the partition in
  // run_hybrid_experiment_flows). first_fault / last_topo bound the
  // goodput-recovery measurement: peak per-window goodput before the first
  // degradation vs after the last routed-in/out settles. Call before the
  // engine runs (and before any restore — the HYBR v2 payload assumes the
  // fault block exists iff this was called).
  void attach_faults(const topo::Graph& g, const topo::RegionCut& cut,
                     const topo::RegionGraph& rg, const ResourceSpace& rs,
                     const std::vector<workload::FlowSpec>& specs,
                     std::vector<FluidEvent> events, std::uint64_t seed,
                     double base_link_rate, Time first_fault,
                     Time last_topo) {
    fault_active_ = true;
    full_ = &g;
    cut_ = &cut;
    rg_ = &rg;
    rs_ = rs;
    specs_ = &specs;
    events_ = std::move(events);
    seed_ = seed;
    base_link_rate_ = base_link_rate;
    first_fault_ = first_fault;
    last_topo_ = last_topo;
    bfs_ = std::make_unique<FaultBfs>(g, &cut);
    link_state_of_.assign(static_cast<std::size_t>(g.num_links()), -1);
    link_dead_.assign(static_cast<std::size_t>(g.num_links()), 0);
    // One FluidLinkState per distinct faulted link, in first-event order —
    // a pure function of the plan, so the save/load layout is static.
    for (const FluidEvent& e : events_) {
      auto& idx = link_state_of_[static_cast<std::size_t>(e.link)];
      if (idx < 0) {
        idx = static_cast<std::int32_t>(link_states_.size());
        FluidLinkState s;
        s.link = e.link;
        link_states_.push_back(s);
      }
    }
  }

  // Quiescent-boundary window protocol. begin_window runs in the control
  // context (fault events, activations, the capped solve, boundary
  // reprogramming); end_window reads the packet-side measurements back.
  void begin_window(sim::Simulator& control, Time t, Time w_end) {
    static_cast<void>(t);
    advance(w_end);
    // Flows whose nominal start falls inside the upcoming window activate
    // now: the solve sees them for the whole window (a conservative
    // over-subscription of at most one window) but their drain and pacing
    // are anchored at the exact start (see end_window / not_before), so
    // window size bounds rate error, not start skew.
    for (FluidFlowState& f : fluid_) {
      if (!f.done && !f.active && f.start < w_end) f.active = true;
    }
    std::uint64_t sig = 0x48594252ULL;
    std::size_t num_active = 0;
    bool caps_moved = false;
    for (std::size_t i = 0; i < fluid_.size(); ++i) {
      const FluidFlowState& f = fluid_[i];
      if (!f.active || excluded(f)) continue;
      ++num_active;
      sig = splitmix64(sig ^ i);
      if (f.kind == FlowKind::kBoundary && !caps_moved) {
        // A cap only matters when it clamps. If the flow was cap-bound at
        // the last solve, any move beyond the tolerance re-solves; if it
        // was not, the measured-rate jitter in the cap is irrelevant until
        // the cap undercuts the rate the flow already holds.
        const double tol = cfg_.cap_tolerance;
        const bool was_bound = !std::isinf(f.cap_at_solve) &&
                               f.rate >= f.cap_at_solve * (1.0 - tol);
        if (was_bound) {
          const double base = std::max(f.cap_at_solve, 1.0);
          if (std::isinf(f.cap) ||
              std::abs(f.cap - f.cap_at_solve) > tol * base)
            caps_moved = true;
        } else if (!std::isinf(f.cap) && f.cap < f.rate * (1.0 - tol)) {
          caps_moved = true;
        }
      }
    }
    if (num_active > 0) {
      if (sig != active_sig_ || caps_moved || force_solve_) {
        solve(num_active);
        active_sig_ = sig;
      } else {
        ++solves_skipped_;
      }
    }
    force_solve_ = false;
    // Re-sync every active boundary source to the bytes still owed — the
    // abstract retransmission of packets the region dropped last window.
    // Stalled/suspended flows pause (rate 0) until the fault clears.
    for (const FluidFlowState& f : fluid_) {
      if (!f.active || f.kind != FlowKind::kBoundary) continue;
      const auto bi = static_cast<std::size_t>(f.boundary);
      if (excluded(f)) {
        sources_[bi]->program(control, 0, 0);
        continue;
      }
      const std::int64_t owed = f.bytes - sinks_[bi]->delivered();
      sources_[bi]->program(control, static_cast<std::int64_t>(f.rate),
                            owed, /*not_before=*/f.start);
    }
  }

  void end_window(Time t, Time w_end) {
    ++windows_;
    const double dt_s = units::to_seconds(w_end - t);
    double delivered_bytes = 0;  // goodput-recovery tracking
    for (FluidFlowState& f : fluid_) {
      if (!f.active) continue;
      // A flow activated mid-window drains only from its exact start.
      const Time base = f.start > t ? f.start : t;
      if (f.kind == FlowKind::kExternal) {
        if (f.rate <= 0) continue;
        const Time dt = w_end - base;
        const double drain = f.rate * units::to_seconds(dt) / 8.0;
        if (f.remaining <= drain + kRemainingEps) {
          // Interpolated completion inside the window.
          const double frac_s = f.remaining * 8.0 / f.rate;
          f.finish = base + std::min<Time>(
                                dt, static_cast<Time>(
                                        frac_s *
                                        static_cast<double>(units::kSecond)));
          delivered_bytes += f.remaining;
          f.remaining = 0;
          f.done = true;
          f.active = false;
        } else {
          f.remaining -= drain;
          delivered_bytes += drain;
        }
      } else {
        const auto bi = static_cast<std::size_t>(f.boundary);
        const std::int64_t delivered = sinks_[bi]->delivered();
        const std::int64_t delta = delivered - f.delivered_last;
        f.delivered_last = delivered;
        f.remaining = static_cast<double>(f.bytes - delivered);
        delivered_bytes += static_cast<double>(delta);
        const double measured =
            static_cast<double>(delta) * 8.0 / dt_s;
        const double floor_rate =
            static_cast<double>(sim::kMss) * 8.0 / dt_s;
        // A paused flow measures nothing; keep its pre-fault cap so the
        // first post-repair solve starts from real history instead of
        // crawling back up from one MSS per window.
        if (!excluded(f)) f.cap = std::max(cfg_.cap_headroom * measured, floor_rate);
        if (sinks_[bi]->completed()) {
          f.finish = sinks_[bi]->finish();
          f.done = true;
          f.active = false;
        }
      }
    }
    if (fault_active_ && dt_s > 0) {
      const double goodput = delivered_bytes / dt_s;
      if (w_end <= first_fault_) peak_pre_ = std::max(peak_pre_, goodput);
      if (t >= last_topo_) peak_post_ = std::max(peak_post_, goodput);
    }
  }

  std::uint64_t windows() const { return windows_; }
  std::uint64_t solves() const { return solves_; }
  std::uint64_t solves_skipped() const { return solves_skipped_; }
  const std::vector<FluidFlowState>& fluid() const { return fluid_; }
  const sim::BoundarySink& sink(int i) const {
    return *sinks_[static_cast<std::size_t>(i)];
  }
  const std::vector<FluidOutage>& fluid_outages() const { return outages_; }
  const std::vector<BoundaryRepin>& boundary_repins() const {
    return repins_;
  }
  double goodput_recovery() const {
    return (peak_pre_ > 0 && peak_post_ > 0) ? peak_post_ / peak_pre_ : 0.0;
  }

  struct FaultTotals {
    std::size_t stalled_flows = 0;
    double stalled_seconds = 0;
    double blackhole_seconds = 0;
  };
  // Closes still-open stall intervals and open outages against `end` (the
  // run deadline) — call once, at result assembly. The blackhole formula is
  // the packet injector's: min(t_routed_out, t_restored, end) - t_down.
  FaultTotals fault_totals(Time end) {
    FaultTotals totals;
    for (FluidFlowState& f : fluid_) {
      if (f.stalled && !f.done) {
        if (end > f.stall_since)
          f.stalled_s += units::to_seconds(end - f.stall_since);
        f.stall_since = end;
        ++totals.stalled_flows;
      }
      totals.stalled_seconds += f.stalled_s;
    }
    for (const FluidOutage& o : outages_) {
      if (o.t_down < 0) continue;
      Time stop = end;
      if (o.t_routed_out >= 0) stop = std::min(stop, o.t_routed_out);
      if (o.t_restored >= 0) stop = std::min(stop, o.t_restored);
      if (stop > o.t_down)
        totals.blackhole_seconds += units::to_seconds(stop - o.t_down);
    }
    return totals;
  }

  // Checkpointable (section "HYBR"):
  std::uint32_t section_tag() const override { return sim::kSectionHybrid; }
  void collect_sinks(sim::SinkRegistry& reg) override {
    for (auto& s : sources_) reg.add(s.get(), sim::CtxKind::kPlain);
  }
  void save_state(sim::SnapshotWriter& w) const override {
    sim::write_section_version(w, sim::kSectionHybrid, kHybridSectionVersion);
    w.u64(windows_);
    w.u64(solves_);
    w.u64(solves_skipped_);
    w.u64(active_sig_);
    w.f64(peak_pre_);
    w.f64(peak_post_);
    w.u64(fluid_.size());
    for (const FluidFlowState& f : fluid_) {
      w.f64(f.remaining);
      w.f64(f.rate);
      w.f64(f.cap);
      w.f64(f.cap_at_solve);
      w.i64(f.delivered_last);
      w.i64(f.finish);
      w.u8(f.active ? 1 : 0);
      w.u8(f.done ? 1 : 0);
      w.u8(f.stalled ? 1 : 0);
      w.u64(f.generation);
      w.i64(f.stall_since);
      w.f64(f.stalled_s);
      w.i64(f.entry_cut);
      w.i64(f.exit_cut);
      // The current fluid route: re-paths move it off the classification.
      w.u64(f.resources.size());
      for (int res : f.resources) w.i64(res);
    }
    for (const auto& s : sources_) s->save_state(w);
    for (const auto& s : sinks_) s->save_state(w);
    w.u8(fault_active_ ? 1 : 0);
    if (fault_active_) {
      w.u64(cursor_);
      w.u64(link_states_.size());
      for (const FluidLinkState& s : link_states_) {
        w.u8(s.down ? 1 : 0);
        w.u8(s.routed_out ? 1 : 0);
        w.f64(s.degrade_factor);
        w.f64(s.gray_factor);
        w.i64(s.open_outage);
      }
      w.u64(outages_.size());
      for (const FluidOutage& o : outages_) {
        w.i64(o.link);
        w.i64(o.t_down);
        w.i64(o.t_routed_out);
        w.i64(o.t_restored);
        w.i64(o.t_routed_in);
        w.u8(o.boundary ? 1 : 0);
      }
      w.u64(repins_.size());
      for (const BoundaryRepin& p : repins_) {
        w.i64(p.flow);
        w.i64(p.from_cut);
        w.i64(p.to_cut);
        w.i64(p.at);
      }
    }
  }
  void load_state(sim::SnapshotReader& r) override {
    sim::expect_section_version(r, sim::kSectionHybrid,
                                kHybridSectionVersion);
    windows_ = r.u64();
    solves_ = r.u64();
    solves_skipped_ = r.u64();
    active_sig_ = r.u64();
    peak_pre_ = r.f64();
    peak_post_ = r.f64();
    SPINELESS_CHECK_MSG(r.u64() == fluid_.size(),
                        "hybrid snapshot fluid flow count mismatch");
    for (FluidFlowState& f : fluid_) {
      f.remaining = r.f64();
      f.rate = r.f64();
      f.cap = r.f64();
      f.cap_at_solve = r.f64();
      f.delivered_last = r.i64();
      f.finish = r.i64();
      f.active = r.u8() != 0;
      f.done = r.u8() != 0;
      f.stalled = r.u8() != 0;
      f.generation = static_cast<std::uint32_t>(r.u64());
      f.stall_since = r.i64();
      f.stalled_s = r.f64();
      f.entry_cut = static_cast<std::int32_t>(r.i64());
      f.exit_cut = static_cast<std::int32_t>(r.i64());
      f.resources.resize(r.u64());
      for (int& res : f.resources) res = static_cast<int>(r.i64());
    }
    for (auto& s : sources_) s->load_state(r);
    for (auto& s : sinks_) s->load_state(r);
    SPINELESS_CHECK_MSG((r.u8() != 0) == fault_active_,
                        "hybrid snapshot fault block mismatch — snapshot "
                        "and run disagree on whether faults are armed");
    if (fault_active_) {
      cursor_ = r.u64();
      SPINELESS_CHECK_MSG(r.u64() == link_states_.size(),
                          "hybrid snapshot fault link-state count mismatch");
      for (FluidLinkState& s : link_states_) {
        s.down = r.u8() != 0;
        s.routed_out = r.u8() != 0;
        s.degrade_factor = r.f64();
        s.gray_factor = r.f64();
        s.open_outage = static_cast<std::int32_t>(r.i64());
        link_dead_[static_cast<std::size_t>(s.link)] =
            s.routed_out ? 1 : 0;
        apply_capacity(s);
      }
      outages_.resize(r.u64());
      for (FluidOutage& o : outages_) {
        o.link = static_cast<topo::LinkId>(r.i64());
        o.t_down = r.i64();
        o.t_routed_out = r.i64();
        o.t_restored = r.i64();
        o.t_routed_in = r.i64();
        o.boundary = r.u8() != 0;
      }
      repins_.resize(r.u64());
      for (BoundaryRepin& p : repins_) {
        p.flow = r.i64();
        p.from_cut = static_cast<std::int32_t>(r.i64());
        p.to_cut = static_cast<std::int32_t>(r.i64());
        p.at = r.i64();
      }
      bfs_->invalidate();
    }
  }

 private:
  void solve(std::size_t num_active) {
    ++solves_;
    flowsim::MaxMinProblem problem(capacities_);
    std::vector<double> caps;
    caps.reserve(num_active);
    std::vector<std::size_t> added;
    added.reserve(num_active);
    for (std::size_t i = 0; i < fluid_.size(); ++i) {
      FluidFlowState& f = fluid_[i];
      if (!f.active || excluded(f)) continue;
      problem.add_flow(f.resources);
      caps.push_back(f.kind == FlowKind::kBoundary ? f.cap : kInf);
      added.push_back(i);
      f.cap_at_solve = f.cap;
    }
    const std::vector<double> rates = problem.solve_capped(caps);
    for (std::size_t k = 0; k < added.size(); ++k)
      fluid_[added[k]].rate = rates[k];
  }

  // --- Fluid/boundary fault machinery (inert unless attach_faults ran) ---

  const FluidLinkState* state_of(topo::LinkId l) const {
    if (link_state_of_.empty()) return nullptr;
    const std::int32_t idx = link_state_of_[static_cast<std::size_t>(l)];
    return idx < 0 ? nullptr : &link_states_[static_cast<std::size_t>(idx)];
  }
  // "Dark" = physically down or routed out — a flow pinned to a dark cut
  // link delivers nothing (suspended) until re-pinned or restored.
  bool cut_dark(std::int32_t c) const {
    if (c < 0) return false;
    const FluidLinkState* s =
        state_of(cut_->cut[static_cast<std::size_t>(c)].link);
    return s != nullptr && (s->down || s->routed_out);
  }
  bool cut_routed_out(std::int32_t c) const {
    if (c < 0) return false;
    const FluidLinkState* s =
        state_of(cut_->cut[static_cast<std::size_t>(c)].link);
    return s != nullptr && s->routed_out;
  }
  // Excluded from the solve (and paced at rate 0): stalled flows have no
  // surviving fluid route; suspended boundary flows are pinned to a dark
  // cut link.
  bool excluded(const FluidFlowState& f) const {
    if (!fault_active_) return false;
    if (f.stalled) return true;
    return f.kind == FlowKind::kBoundary &&
           (cut_dark(f.entry_cut) || cut_dark(f.exit_cut));
  }

  void apply_capacity(const FluidLinkState& s) {
    const double cap = (s.down ? 0.0 : base_link_rate_) * s.degrade_factor *
                       s.gray_factor;
    capacities_[static_cast<std::size_t>(rs_.link(s.link, true))] = cap;
    capacities_[static_cast<std::size_t>(rs_.link(s.link, false))] = cap;
  }

  void stall(FluidFlowState& f, Time at) {
    if (f.stalled) return;
    f.stalled = true;
    f.stall_since = std::max(at, f.start);
    f.rate = 0;
  }
  void unstall(FluidFlowState& f, Time at) {
    if (!f.stalled) return;
    if (at > f.stall_since)
      f.stalled_s += units::to_seconds(at - f.stall_since);
    f.stall_since = -1;
    f.stalled = false;
  }

  // Rebuilds a flow's fluid resource list from its CURRENT gateway pinning
  // over the surviving cold subgraph, using the per-(flow, generation) RNG
  // stream. No surviving route -> the flow stalls (blackhole accounting).
  void rebuild_resources(std::size_t i, Time at) {
    FluidFlowState& f = fluid_[i];
    Rng rng(splitmix64(splitmix64(seed_ ^ kRepathSalt) ^
                       static_cast<std::uint64_t>(f.spec) ^
                       (static_cast<std::uint64_t>(f.generation) << 32)));
    const workload::FlowSpec& spec = (*specs_)[f.spec];
    std::vector<int> res;
    bool ok = true;
    const auto append_edges = [&](const routing::Path& p) {
      for (std::size_t step = 0; step + 1 < p.size(); ++step) {
        const topo::LinkId l = link_between(*full_, p[step], p[step + 1]);
        res.push_back(rs_.link(l, full_->link(l).a == p[step]));
      }
    };
    if (f.kind == FlowKind::kExternal) {
      res.push_back(rs_.host_up(spec.src));
      const routing::Path p =
          bfs_->sample(full_->tor_of_host(spec.src),
                       full_->tor_of_host(spec.dst), rng, link_dead_);
      if (p.empty()) ok = false;
      append_edges(p);
      res.push_back(rs_.host_down(spec.dst));
    } else {
      if (f.entry_cut >= 0) {
        res.push_back(rs_.host_up(spec.src));
        const routing::Path p = bfs_->sample(
            full_->tor_of_host(spec.src),
            cut_->cut[static_cast<std::size_t>(f.entry_cut)].outside, rng,
            link_dead_);
        if (p.empty()) ok = false;
        append_edges(p);
      }
      if (f.exit_cut >= 0) {
        const routing::Path p = bfs_->sample(
            cut_->cut[static_cast<std::size_t>(f.exit_cut)].outside,
            full_->tor_of_host(spec.dst), rng, link_dead_);
        if (p.empty()) ok = false;
        append_edges(p);
        res.push_back(rs_.host_down(spec.dst));
      }
    }
    if (!ok) {
      stall(f, at);
      return;
    }
    f.resources = std::move(res);
    unstall(f, at);
  }

  void repath_flow(std::size_t i, Time at) {
    ++fluid_[i].generation;
    rebuild_resources(i, at);
  }

  // Deterministic re-pin of a boundary flow off routed-out cut link `c`:
  // prefer a surviving cut link at the same inside switch (lowest cut
  // index), else the lowest surviving cut index; never collapse src and
  // dst onto one gateway. No survivor -> the region is severed for this
  // flow: record to_cut = -1 and demote it to stalled fluid.
  void repin_boundary(std::size_t i, std::int32_t c, Time at) {
    FluidFlowState& f = fluid_[i];
    const bool entry = f.entry_cut == c;
    const topo::NodeId inside =
        cut_->cut[static_cast<std::size_t>(c)].inside;
    std::int32_t pick = -1;
    for (int pass = 0; pass < 2 && pick < 0; ++pass) {
      for (std::size_t k = 0; k < cut_->cut.size(); ++k) {
        const auto kc = static_cast<std::int32_t>(k);
        if (kc == c || cut_routed_out(kc)) continue;
        if (pass == 0 && cut_->cut[k].inside != inside) continue;
        if (kc == (entry ? f.exit_cut : f.entry_cut)) continue;
        pick = kc;
        break;
      }
    }
    repins_.push_back(
        {static_cast<std::int64_t>(f.spec), c, pick, at});
    if (pick < 0) {
      stall(f, at);
      return;
    }
    (entry ? f.entry_cut : f.exit_cut) = pick;
    ++f.generation;
    const topo::LinkId new_link =
        cut_->cut[static_cast<std::size_t>(pick)].link;
    const std::uint64_t phase_key = splitmix64(
        splitmix64(seed_ ^ kBoundarySalt) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(new_link))
         << 32) ^
        static_cast<std::uint64_t>(f.spec) ^
        (static_cast<std::uint64_t>(f.generation) << 48));
    const topo::HostId gw =
        rg_->gateway_host[static_cast<std::size_t>(pick)];
    sim::BoundarySource& src = *sources_[static_cast<std::size_t>(f.boundary)];
    if (entry) {
      src.retarget(gw, src.dst(), phase_key);
    } else {
      src.retarget(src.src(), gw, phase_key);
    }
    // The re-pinned side's fluid segment must reach the new outside node.
    rebuild_resources(i, at);
  }

  // Re-pin/re-path every not-yet-finished flow that the routed-out link
  // carried (future flows included — their pre-built routes die with it).
  void route_out(const FluidEvent& e) {
    if (e.boundary) {
      const std::int32_t c =
          static_cast<std::int32_t>(cut_index_of(*cut_, e.link));
      for (std::size_t i = 0; i < fluid_.size(); ++i) {
        FluidFlowState& f = fluid_[i];
        if (f.done || f.kind != FlowKind::kBoundary) continue;
        if (f.entry_cut == c || f.exit_cut == c) repin_boundary(i, c, e.at);
      }
      return;
    }
    const int r0 = rs_.link(e.link, true);
    const int r1 = rs_.link(e.link, false);
    for (std::size_t i = 0; i < fluid_.size(); ++i) {
      FluidFlowState& f = fluid_[i];
      if (f.done) continue;
      for (int res : f.resources) {
        if (res == r0 || res == r1) {
          repath_flow(i, e.at);
          break;
        }
      }
    }
  }

  // A routed-in link can unblock stalled flows: severed boundary flows
  // retry the re-pin, stalled fluid routes retry the BFS.
  void retry_stalled(Time at) {
    for (std::size_t i = 0; i < fluid_.size(); ++i) {
      FluidFlowState& f = fluid_[i];
      if (!f.stalled || f.done) continue;
      if (f.kind == FlowKind::kBoundary) {
        if (cut_routed_out(f.entry_cut)) {
          repin_boundary(i, f.entry_cut, at);
          continue;
        }
        if (cut_routed_out(f.exit_cut)) {
          repin_boundary(i, f.exit_cut, at);
          continue;
        }
      }
      repath_flow(i, at);
    }
  }

  // Applies every fault event with a nominal time inside the upcoming
  // window at its start — the same one-window quantization flows'
  // activations already get. Skip rules make interleavings deterministic:
  // a routed-out for a link that recovered before the hold expired is a
  // no-op, as is a routed-in for a link that was never routed out.
  void advance(Time w_end) {
    if (!fault_active_) return;
    bool changed = false;
    while (cursor_ < events_.size() &&
           events_[static_cast<std::size_t>(cursor_)].at < w_end) {
      const FluidEvent& e = events_[static_cast<std::size_t>(cursor_++)];
      FluidLinkState& s = link_states_[static_cast<std::size_t>(
          link_state_of_[static_cast<std::size_t>(e.link)])];
      switch (e.kind) {
        case FluidEvent::Kind::kDown:
          if (s.down) break;
          s.down = true;
          s.open_outage = static_cast<std::int32_t>(outages_.size());
          outages_.push_back({e.link, e.at, -1, -1, -1, e.boundary});
          apply_capacity(s);
          changed = true;
          break;
        case FluidEvent::Kind::kRoutedOut:
          if (!s.down || s.routed_out) break;
          s.routed_out = true;
          link_dead_[static_cast<std::size_t>(e.link)] = 1;
          if (s.open_outage >= 0)
            outages_[static_cast<std::size_t>(s.open_outage)].t_routed_out =
                e.at;
          bfs_->invalidate();
          route_out(e);
          changed = true;
          break;
        case FluidEvent::Kind::kUp:
          if (!s.down) break;
          s.down = false;
          if (s.open_outage >= 0) {
            outages_[static_cast<std::size_t>(s.open_outage)].t_restored =
                e.at;
            // Recovered before the hold expired: the cycle never touched
            // the tables, close it here.
            if (!s.routed_out) s.open_outage = -1;
          }
          apply_capacity(s);
          changed = true;
          break;
        case FluidEvent::Kind::kRoutedIn:
          if (!s.routed_out || s.down) break;
          s.routed_out = false;
          link_dead_[static_cast<std::size_t>(e.link)] = 0;
          if (s.open_outage >= 0) {
            outages_[static_cast<std::size_t>(s.open_outage)].t_routed_in =
                e.at;
            s.open_outage = -1;
          }
          bfs_->invalidate();
          retry_stalled(e.at);
          changed = true;
          break;
        case FluidEvent::Kind::kDegrade:
          if (s.degrade_factor == e.factor) break;
          s.degrade_factor = e.factor;
          apply_capacity(s);
          changed = true;
          break;
        case FluidEvent::Kind::kGray:
          if (s.gray_factor == e.factor) break;
          s.gray_factor = e.factor;
          apply_capacity(s);
          changed = true;
          break;
      }
    }
    if (changed) force_solve_ = true;
  }

  const HybridConfig& cfg_;
  std::vector<double> capacities_;
  std::vector<FluidFlowState> fluid_;
  std::vector<std::unique_ptr<sim::BoundarySource>> sources_;
  std::vector<std::unique_ptr<sim::BoundarySink>> sinks_;
  std::uint64_t windows_ = 0;
  std::uint64_t solves_ = 0;
  std::uint64_t solves_skipped_ = 0;
  std::uint64_t active_sig_ = 0;

  // Fault machinery (attach_faults; all inert otherwise).
  bool fault_active_ = false;
  const topo::Graph* full_ = nullptr;
  const topo::RegionCut* cut_ = nullptr;
  const topo::RegionGraph* rg_ = nullptr;
  ResourceSpace rs_{};
  const std::vector<workload::FlowSpec>* specs_ = nullptr;
  std::vector<FluidEvent> events_;
  std::uint64_t seed_ = 0;
  double base_link_rate_ = 0;
  Time first_fault_ = 0;
  Time last_topo_ = 0;
  std::unique_ptr<FaultBfs> bfs_;
  std::vector<FluidLinkState> link_states_;   // one per faulted link
  std::vector<std::int32_t> link_state_of_;   // full link -> index or -1
  std::vector<char> link_dead_;               // full link -> routed out
  std::uint64_t cursor_ = 0;                  // next unapplied event
  std::vector<FluidOutage> outages_;
  std::vector<BoundaryRepin> repins_;
  bool force_solve_ = false;
  double peak_pre_ = 0;
  double peak_post_ = 0;
};

// Windowed co-simulation drive loop, mirroring run_with_boundaries'
// checkpoint/audit/cancel semantics at window granularity.
template <typename Engine>
bool run_windows(Engine& eng, sim::Simulator& control, HybridLoop& loop,
                 sim::CheckpointSession* session,
                 const sim::CheckpointSpec& spec, Time deadline,
                 Time window) {
  Time t = eng.now();  // resume point when a snapshot was restored
  Time last_save = t;
  while (t < deadline) {
    const Time w_end = std::min<Time>(deadline, t + window);
    loop.begin_window(control, t, w_end);
    eng.run_until(w_end);
    loop.end_window(t, w_end);
    t = w_end;
    if (spec.progress) spec.progress(eng.events_processed());
    if (session != nullptr && spec.audit) {
      const sim::AuditReport report = session->audit(eng);
      if (!report.ok()) throw Error(report.to_string());
    }
    if (t >= deadline) break;
    if (session != nullptr && !spec.path.empty() &&
        (spec.interval <= 0 || t - last_save >= spec.interval)) {
      session->save(spec.path, eng);
      last_save = t;
    }
    if (spec.cancel && spec.cancel()) return false;
  }
  return true;
}

std::uint64_t mix_double(sim::HashChain& h, double v) {
  return h.mix(std::bit_cast<std::uint64_t>(v)).value();
}

}  // namespace

std::uint64_t hybrid_config_hash(const topo::Graph& g,
                                 const std::vector<workload::FlowSpec>& specs,
                                 const HybridConfig& cfg) {
  sim::HashChain h;
  h.mix(fct_config_hash(g, cfg.fct))
      .mix(static_cast<std::uint64_t>(cfg.region_mode))
      .mix(static_cast<std::uint64_t>(cfg.auto_region_switches))
      .mix(static_cast<std::uint64_t>(cfg.window));
  mix_double(h, cfg.cap_tolerance);
  mix_double(h, cfg.cap_headroom);
  h.mix(cfg.region_switches.size());
  for (topo::NodeId n : cfg.region_switches)
    h.mix(static_cast<std::uint64_t>(n));
  h.mix(cfg.region_supernodes.size());
  for (int s : cfg.region_supernodes) h.mix(static_cast<std::uint64_t>(s));
  h.mix(specs.size());
  for (const workload::FlowSpec& f : specs) {
    h.mix(static_cast<std::uint64_t>(f.src))
        .mix(static_cast<std::uint64_t>(f.dst))
        .mix(static_cast<std::uint64_t>(f.bytes))
        .mix(static_cast<std::uint64_t>(f.start));
  }
  // Mixed only when faults are armed, so fault-free configs keep their
  // pre-fault hashes (snapshots stay cross-compatible).
  if (!cfg.fault_spec.empty()) {
    h.mix(0xFA017ULL).mix(cfg.fault_spec.size());
    for (const char c : cfg.fault_spec)
      h.mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    h.mix(static_cast<std::uint64_t>(cfg.fault.hello_interval))
        .mix(static_cast<std::uint64_t>(cfg.fault.hold_count))
        .mix(static_cast<std::uint64_t>(cfg.fault.repair_delay));
  }
  return h.value();
}

HybridResult run_hybrid_experiment_flows(
    const topo::Graph& g, const std::vector<workload::FlowSpec>& specs,
    const HybridConfig& cfg, const std::vector<int>* supernode_of) {
  // Hashed hop-by-hop modes only: the full-graph path sample and the
  // region-local tables must come from the same forwarding discipline, and
  // kSourceRouted pins full-graph paths no region table can reproduce.
  SPINELESS_CHECK_MSG(cfg.fct.net.mode != sim::RoutingMode::kSourceRouted,
                      "hybrid co-simulation supports hashed routing only");
  const double setup_start = util::monotonic_seconds();

  // --- Sample every flow's full-graph path (deterministic side stream) ---
  Rng path_rng(splitmix64(cfg.fct.seed ^ kPathStreamSalt));
  std::vector<routing::Path> paths;
  paths.reserve(specs.size());
  if (g.num_switches() <= kPathTableThreshold) {
    PathSampler sampler(g, cfg.fct.net.mode, cfg.fct.net.su_k);
    for (const workload::FlowSpec& f : specs) {
      paths.push_back(sampler.sample(g.tor_of_host(f.src),
                                     g.tor_of_host(f.dst), path_rng));
    }
  } else {
    BfsSampler sampler(g);
    for (const workload::FlowSpec& f : specs) {
      paths.push_back(sampler.sample(g.tor_of_host(f.src),
                                     g.tor_of_host(f.dst), path_rng));
    }
  }

  // --- Region selection + packet subgraph ---
  topo::RegionCut cut;
  switch (cfg.region_mode) {
    case RegionMode::kSwitches:
      cut = topo::region_from_switches(g, cfg.region_switches);
      break;
    case RegionMode::kSupernodes:
      SPINELESS_CHECK_MSG(supernode_of != nullptr,
                          "RegionMode::kSupernodes needs supernode_of");
      cut = topo::region_from_supernodes(g, *supernode_of,
                                         cfg.region_supernodes);
      break;
    case RegionMode::kAuto: {
      // Demand per directed link from the sampled paths — the "prior fluid
      // pass" that locates the congested neighborhood.
      std::vector<double> demand(2 * static_cast<std::size_t>(g.num_links()),
                                 0.0);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const routing::Path& p = paths[i];
        for (std::size_t t = 0; t + 1 < p.size(); ++t) {
          const topo::LinkId l = link_between(g, p[t], p[t + 1]);
          const std::size_t dir = g.link(l).a == p[t] ? 0 : 1;
          demand[2 * static_cast<std::size_t>(l) + dir] +=
              static_cast<double>(specs[i].bytes);
        }
      }
      cut = topo::region_from_utilization(g, demand,
                                          cfg.auto_region_switches);
      break;
    }
  }
  const topo::RegionGraph rg = topo::build_region_graph(g, cut);
  SPINELESS_CHECK_MSG(rg.graph.connected(),
                      "hybrid region subgraph must be connected");

  const std::int64_t link_rate = cfg.fct.net.link_rate_bps;
  const std::int64_t host_rate =
      cfg.fct.net.host_rate_bps > 0 ? cfg.fct.net.host_rate_bps : link_rate;
  const ResourceSpace rs{g.total_servers(), g.num_links()};
  std::vector<double> capacities(rs.total());
  for (std::int64_t hh = 0; hh < rs.num_hosts; ++hh) {
    capacities[static_cast<std::size_t>(hh)] =
        static_cast<double>(host_rate);
    capacities[static_cast<std::size_t>(rs.num_hosts + hh)] =
        static_cast<double>(host_rate);
  }
  for (std::size_t i = static_cast<std::size_t>(2 * rs.num_hosts);
       i < capacities.size(); ++i) {
    capacities[i] = static_cast<double>(link_rate);
  }

  // --- Classification ---
  std::vector<FlowPlan> plans;
  plans.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    plans.push_back(classify_flow(g, cut, rg, rs, specs[i], paths[i]));

  // --- Fault partition: region sub-plan / boundary / fluid ---------------
  // Region-internal actions drive a packet FaultInjector; everything else
  // (cut + external links) expands into window-quantized fluid events with
  // the SAME detection + repair timing the packet side would measure.
  const bool faults = !cfg.fault_spec.empty();
  fault::FaultPlan region_plan;
  std::vector<FluidEvent> fluid_events;
  Time first_fault = 0;
  Time last_topo = 0;
  if (faults) {
    cfg.fault.validate(cfg.fct.net.link_delay);
    const fault::FaultPlan full_plan =
        fault::FaultPlan::parse(cfg.fault_spec, g, cfg.fct.seed);
    const Time hold =
        static_cast<Time>(cfg.fault.hold_count) * cfg.fault.hello_interval;
    std::vector<fault::FaultAction> region_actions;
    first_fault = std::numeric_limits<Time>::max();
    const auto is_cut = [&](topo::LinkId l) {
      const auto it = std::lower_bound(
          cut.cut.begin(), cut.cut.end(), l,
          [](const topo::CutLink& c, topo::LinkId id) { return c.link < id; });
      return it != cut.cut.end() && it->link == l;
    };
    using K = fault::FaultAction::Kind;
    for (const fault::FaultAction& a : full_plan.actions()) {
      // Whole-plan goodput-recovery bounds: when a fault first degrades
      // the network and when its last table change settles.
      Time settle = a.at;
      if (a.kind == K::kLinkDown) settle = a.at + hold + cfg.fault.repair_delay;
      if (a.kind == K::kLinkUp)
        settle = a.at + cfg.fault.hello_interval + cfg.fault.repair_delay;
      last_topo = std::max(last_topo, settle);
      if (a.kind == K::kLinkDown ||
          (a.kind == K::kDegradeOn && a.rate_factor < 1.0) ||
          (a.kind == K::kGrayOn && (a.drop_prob > 0 || a.corrupt_prob > 0)))
        first_fault = std::min(first_fault, a.at);
      const topo::LinkId rl =
          rg.link_to_region[static_cast<std::size_t>(a.link)];
      if (rl != topo::kInvalidLink) {
        fault::FaultAction ra = a;
        ra.link = rl;
        region_actions.push_back(ra);
        continue;
      }
      const bool boundary = is_cut(a.link);
      switch (a.kind) {
        case K::kLinkDown:
          fluid_events.push_back(
              {FluidEvent::Kind::kDown, a.at, a.link, 1.0, boundary});
          fluid_events.push_back({FluidEvent::Kind::kRoutedOut,
                                  a.at + hold + cfg.fault.repair_delay,
                                  a.link, 1.0, boundary});
          break;
        case K::kLinkUp:
          fluid_events.push_back(
              {FluidEvent::Kind::kUp, a.at, a.link, 1.0, boundary});
          fluid_events.push_back(
              {FluidEvent::Kind::kRoutedIn,
               a.at + cfg.fault.hello_interval + cfg.fault.repair_delay,
               a.link, 1.0, boundary});
          break;
        case K::kGrayOn:
          // Gray on a cut link is not modeled (documented in HybridConfig);
          // on an external link it scales capacity by the expected goodput
          // fraction and — like packet gray — is never detected.
          if (!boundary)
            fluid_events.push_back(
                {FluidEvent::Kind::kGray, a.at, a.link,
                 (1.0 - a.drop_prob) * (1.0 - a.corrupt_prob), false});
          break;
        case K::kGrayOff:
          if (!boundary)
            fluid_events.push_back(
                {FluidEvent::Kind::kGray, a.at, a.link, 1.0, false});
          break;
        case K::kDegradeOn:
          if (!boundary)
            fluid_events.push_back({FluidEvent::Kind::kDegrade, a.at, a.link,
                                    a.rate_factor, false});
          break;
        case K::kDegradeOff:
          if (!boundary)
            fluid_events.push_back(
                {FluidEvent::Kind::kDegrade, a.at, a.link, 1.0, false});
          break;
      }
    }
    if (first_fault == std::numeric_limits<Time>::max()) first_fault = 0;
    std::stable_sort(
        fluid_events.begin(), fluid_events.end(),
        [](const FluidEvent& x, const FluidEvent& y) { return x.at < y.at; });
    region_plan =
        fault::FaultPlan::from_actions(std::move(region_actions), cfg.fct.seed);
  }

  const double setup_s = util::monotonic_seconds() - setup_start;

  // --- Packet region construction (fixed oid order: Network, internal TCP
  // flows in spec order, then boundary sources in spec order) ---
  sim::Network net(rg.graph, cfg.fct.net);
  sim::FlowDriver driver(net, cfg.fct.tcp);
  HybridLoop loop(cfg, std::move(capacities));
  std::unique_ptr<fault::FaultInjector> injector;

  const Time deadline = static_cast<Time>(
      static_cast<double>(cfg.fct.flowgen.window) * cfg.fct.drain_factor);
  if (faults) {
    loop.attach_faults(g, cut, rg, rs, specs, std::move(fluid_events),
                       cfg.fct.seed, static_cast<double>(link_rate),
                       first_fault, last_topo);
  }
  const Time window = std::max<Time>(1, cfg.window);
  const std::uint64_t config_hash = hybrid_config_hash(g, specs, cfg);
  const sim::CheckpointSpec& spec = cfg.fct.checkpoint;

  HybridResult result;
  result.flows = specs.size();
  result.region_switches = static_cast<int>(cut.hot.size());
  result.cut_links = static_cast<int>(cut.cut.size());

  // spec index -> (internal driver id | fluid index), for result assembly.
  std::vector<std::int32_t> internal_id(specs.size(), -1);
  std::vector<std::int32_t> fluid_id(specs.size(), -1);

  const auto build = [&](sim::Simulator& control) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (plans[i].kind != FlowKind::kInternal) continue;
      const workload::FlowSpec& f = specs[i];
      internal_id[i] = driver.add_flow(
          control,
          rg.host_to_region[static_cast<std::size_t>(f.src)],
          rg.host_to_region[static_cast<std::size_t>(f.dst)], f.bytes,
          f.start);
      ++result.internal_flows;
    }
    std::int32_t next_flow_id =
        static_cast<std::int32_t>(driver.num_flows());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (plans[i].kind == FlowKind::kInternal) continue;
      const workload::FlowSpec& f = specs[i];
      FluidFlowState state;
      state.spec = i;
      state.kind = plans[i].kind;
      state.resources = plans[i].resources;
      state.bytes = f.bytes;
      state.start = f.start;
      state.entry_cut = plans[i].entry_cut;
      state.exit_cut = plans[i].exit_cut;
      if (plans[i].kind == FlowKind::kBoundary) {
        state.boundary = loop.num_boundaries();
        auto sink = std::make_unique<sim::BoundarySink>(f.bytes);
        const std::uint64_t phase_key = splitmix64(
            splitmix64(cfg.fct.seed ^ kBoundarySalt) ^
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(plans[i].boundary_link))
             << 32) ^
            static_cast<std::uint64_t>(i));
        auto src = std::make_unique<sim::BoundarySource>(
            net, next_flow_id++, plans[i].pkt_src, plans[i].pkt_dst,
            sink.get(), phase_key);
        loop.add_boundary(std::move(src), std::move(sink));
        ++result.boundary_flows;
      } else {
        ++result.external_flows;
      }
      fluid_id[i] = static_cast<std::int32_t>(i);
      loop.add_fluid_flow(std::move(state));
    }
    if (faults) {
      // After every flow, so flow oids match fault-free builds; armed
      // before any restore — a restore overwrites the event heaps
      // wholesale, exactly like FlowDriver's build-time schedules.
      injector =
          std::make_unique<fault::FaultInjector>(net, region_plan, cfg.fault);
      injector->arm(control, deadline);
    }
  };
  // add_fluid_flow indexed by compacting spec order; remap fluid_id to the
  // loop's dense index.
  // (done after build below)

  bool finished = true;
  std::uint64_t packet_events = 0;
  const auto drive = [&](auto& eng, sim::Simulator& control) {
    sim::CheckpointSession session(net, config_hash);
    session.add(&driver);
    session.add(&loop);
    if (injector) session.add(injector.get());
    if (spec.resume && !spec.path.empty()) session.restore(spec.path, eng);
    finished = run_windows(eng, control, loop, &session, spec, deadline,
                           window);
    packet_events = eng.events_processed();
  };

  if (net.sharded()) {
    sim::ShardedEngine engine(net);
    build(engine.control());
    drive(engine, engine.control());
  } else {
    sim::Simulator simulator;
    build(simulator);
    drive(simulator, simulator);
  }

  // Remap fluid_id from spec index to dense loop index.
  {
    std::int32_t dense = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (fluid_id[i] >= 0) fluid_id[i] = dense++;
    }
  }

  // --- Result assembly (spec order, so sample order is deterministic) ---
  sim::HashChain rh;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Time start = -1;
    Time finish = -1;
    if (internal_id[i] >= 0) {
      const sim::FlowRecord& rec =
          driver.flow(static_cast<std::size_t>(internal_id[i])).record();
      start = rec.start;
      finish = rec.finish;
    } else {
      const FluidFlowState& f =
          loop.fluid()[static_cast<std::size_t>(fluid_id[i])];
      start = f.start;
      finish = f.finish;
    }
    if (finish >= 0) {
      result.fct_ms.add(units::to_millis(finish - start));
      ++result.completed;
    }
    rh.mix(static_cast<std::uint64_t>(plans[i].kind))
        .mix(static_cast<std::uint64_t>(finish));
  }
  result.finished = finished;
  result.packet_events = packet_events;
  result.fluid_windows = loop.windows();
  result.fluid_solves = loop.solves();
  result.fluid_solves_skipped = loop.solves_skipped();
  result.queue_drops = net.stats().queue_drops;
  result.retransmits = driver.total_retransmits();
  result.intra_jobs = net.config().intra_jobs;
  result.table_build_s = net.table_build_seconds() + setup_s;
  rh.mix(result.flows)
      .mix(result.completed)
      .mix(result.packet_events)
      .mix(result.fluid_windows)
      .mix(result.fluid_solves)
      .mix(result.fluid_solves_skipped)
      .mix(static_cast<std::uint64_t>(result.queue_drops))
      .mix(static_cast<std::uint64_t>(result.retransmits));
  if (faults) {
    const HybridLoop::FaultTotals totals = loop.fault_totals(deadline);
    result.stalled_flows = totals.stalled_flows;
    result.boundary_repins = loop.boundary_repins().size();
    result.fluid_outages = loop.fluid_outages().size();
    result.fluid_blackhole_seconds = totals.blackhole_seconds;
    result.stalled_seconds = totals.stalled_seconds;
    result.goodput_recovery = loop.goodput_recovery();

    // Unified cross-half report. Packet-injector link ids are region-local;
    // translate them back to full-graph ids so one document names every
    // link consistently.
    std::vector<topo::LinkId> region_link_to_full(
        static_cast<std::size_t>(rg.graph.num_links()), topo::kInvalidLink);
    for (std::size_t l = 0; l < rg.link_to_region.size(); ++l) {
      if (rg.link_to_region[l] != topo::kInvalidLink)
        region_link_to_full[static_cast<std::size_t>(rg.link_to_region[l])] =
            static_cast<topo::LinkId>(l);
    }
    JsonWriter jw;
    jw.begin_object();
    jw.key("packet");
    jw.begin_object();
    {
      const fault::FaultInjector::Report pr = injector->report(deadline);
      jw.kv("blackhole_seconds", pr.blackhole_seconds);
      jw.kv("undetected_gray_windows", pr.undetected_gray_windows);
      jw.key("outages");
      jw.begin_array();
      for (const fault::FaultInjector::Outage& o : pr.outages) {
        jw.begin_object();
        jw.kv("link", static_cast<std::int64_t>(
                          region_link_to_full[static_cast<std::size_t>(
                              o.link)]));
        jw.kv("t_down", static_cast<std::int64_t>(o.t_down));
        jw.kv("t_detected", static_cast<std::int64_t>(o.t_detected));
        jw.kv("t_routed_out", static_cast<std::int64_t>(o.t_routed_out));
        jw.kv("t_restored", static_cast<std::int64_t>(o.t_restored));
        jw.kv("t_up_detected", static_cast<std::int64_t>(o.t_up_detected));
        jw.kv("t_routed_in", static_cast<std::int64_t>(o.t_routed_in));
        jw.end_object();
      }
      jw.end_array();
      jw.key("gray_windows");
      jw.begin_array();
      for (const fault::FaultInjector::GrayWindow& gw : pr.gray_windows) {
        jw.begin_object();
        jw.kv("link", static_cast<std::int64_t>(
                          region_link_to_full[static_cast<std::size_t>(
                              gw.link)]));
        jw.kv("from", static_cast<std::int64_t>(gw.from));
        jw.kv("until", static_cast<std::int64_t>(gw.until));
        jw.kv("detected", gw.detected);
        jw.end_object();
      }
      jw.end_array();
    }
    jw.end_object();
    jw.key("fluid");
    jw.begin_object();
    jw.kv("blackhole_seconds", totals.blackhole_seconds);
    jw.kv("stalled_flows",
          static_cast<std::uint64_t>(totals.stalled_flows));
    jw.kv("stalled_seconds", totals.stalled_seconds);
    jw.key("outages");
    jw.begin_array();
    for (const FluidOutage& o : loop.fluid_outages()) {
      jw.begin_object();
      jw.kv("link", static_cast<std::int64_t>(o.link));
      jw.kv("t_down", static_cast<std::int64_t>(o.t_down));
      jw.kv("t_routed_out", static_cast<std::int64_t>(o.t_routed_out));
      jw.kv("t_restored", static_cast<std::int64_t>(o.t_restored));
      jw.kv("t_routed_in", static_cast<std::int64_t>(o.t_routed_in));
      jw.kv("boundary", o.boundary);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    jw.key("boundary");
    jw.begin_object();
    std::int64_t severed = 0;
    jw.key("repins");
    jw.begin_array();
    for (const BoundaryRepin& p : loop.boundary_repins()) {
      if (p.to_cut < 0) ++severed;
      jw.begin_object();
      jw.kv("flow", p.flow);
      jw.kv("from_cut", static_cast<std::int64_t>(p.from_cut));
      jw.kv("to_cut", static_cast<std::int64_t>(p.to_cut));
      jw.kv("at", static_cast<std::int64_t>(p.at));
      jw.end_object();
    }
    jw.end_array();
    jw.kv("severed", severed);
    jw.end_object();
    jw.kv("goodput_recovery", result.goodput_recovery);
    jw.end_object();
    result.fault_report = jw.str();

    rh.mix(result.stalled_flows)
        .mix(result.boundary_repins)
        .mix(result.fluid_outages);
    mix_double(rh, result.fluid_blackhole_seconds);
    mix_double(rh, result.stalled_seconds);
    mix_double(rh, result.goodput_recovery);
  }
  result.result_hash = rh.value();
  return result;
}

HybridResult run_hybrid_experiment(const topo::Graph& g,
                                   const workload::RackTm& tm,
                                   const HybridConfig& cfg,
                                   const std::vector<int>* supernode_of) {
  Rng rng(cfg.fct.seed);
  workload::TmSampler sampler(g, tm);
  if (cfg.fct.random_placement) sampler.apply_random_placement(rng);
  const auto specs = workload::generate_flows(sampler, cfg.fct.flowgen, rng);
  return run_hybrid_experiment_flows(g, specs, cfg, supernode_of);
}

}  // namespace spineless::core
