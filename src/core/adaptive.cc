#include "core/adaptive.h"

#include <algorithm>
#include <vector>

#include "topo/analysis.h"
#include "util/error.h"

namespace spineless::core {

double weighted_path_diversity(const topo::Graph& g,
                               const workload::RackTm& tm,
                               std::int64_t path_count_cap) {
  double weight_sum = 0;
  double weighted = 0;
  for (topo::NodeId a = 0; a < g.num_switches(); ++a) {
    for (topo::NodeId b = 0; b < g.num_switches(); ++b) {
      const double w = tm.at(a, b);
      if (w <= 0 || a == b) continue;
      const auto count = static_cast<double>(
          topo::count_shortest_paths(g, a, b, path_count_cap));
      weighted += w * count;
      weight_sum += w;
    }
  }
  SPINELESS_CHECK(weight_sum > 0);
  return weighted / weight_sum;
}

double demand_concentration(const topo::Graph& g,
                            const workload::RackTm& tm) {
  std::vector<double> egress;
  double total = 0;
  for (topo::NodeId a = 0; a < g.num_switches(); ++a) {
    if (g.servers(a) == 0) continue;
    double out = 0;
    for (topo::NodeId b = 0; b < g.num_switches(); ++b) out += tm.at(a, b);
    egress.push_back(out);
    total += out;
  }
  SPINELESS_CHECK(total > 0);
  std::sort(egress.rbegin(), egress.rend());
  const auto top = (egress.size() + 9) / 10;  // ceil(10%)
  double top_sum = 0;
  for (std::size_t i = 0; i < top; ++i) top_sum += egress[i];
  return top_sum / total;
}

sim::RoutingMode choose_routing(const topo::Graph& g,
                                const workload::RackTm& tm,
                                const AdaptiveConfig& cfg) {
  const double diversity =
      weighted_path_diversity(g, tm, cfg.path_count_cap);
  const double concentration = demand_concentration(g, tm);
  const bool needs_paths = diversity < cfg.diversity_threshold ||
                           concentration > cfg.concentration_threshold;
  return needs_paths ? sim::RoutingMode::kShortestUnion
                     : sim::RoutingMode::kEcmp;
}

}  // namespace spineless::core
