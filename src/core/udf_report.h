// §3.1 flatness analysis report: NSR / UDF for a scenario's topologies,
// closed-form vs constructed, plus structural statistics. Drives
// bench_udf_table (experiment E4 in DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "core/scenario.h"
#include "topo/analysis.h"

namespace spineless::core {

struct TopologyReport {
  std::string name;
  int switches = 0;
  int servers = 0;
  topo::NsrStats nsr;
  topo::PathLengthStats paths;
  int bisection_upper = 0;
};

struct UdfReport {
  TopologyReport leaf_spine;
  TopologyReport rrg;
  TopologyReport dring;
  double udf_closed_form = 0;  // always 2 for leaf-spine
  double udf_rrg = 0;          // NSR(RRG)/NSR(leaf-spine), measured
  double udf_dring = 0;
};

UdfReport make_udf_report(const Scenario& s);

}  // namespace spineless::core
