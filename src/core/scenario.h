// Equal-equipment experiment scenarios (§5.1): a leaf-spine(x, y) baseline
// and the flat topologies built by rewiring the exact same switches and
// servers — the RRG (Jellyfish-style) flat transform and the DRing.
#pragma once

#include <cstdint>

#include "topo/builders.h"
#include "topo/graph.h"

namespace spineless::core {

struct Scenario {
  int x = 12;  // servers per leaf
  int y = 4;   // spines (oversubscription x/y = 3, §5.1)
  int dring_supernodes = 10;
  std::uint64_t seed = 1;

  int num_switches() const { return x + 2 * y; }
  int ports_per_switch() const { return x + y; }
  int leaf_spine_servers() const { return x * (x + y); }

  // The three §5.1 topologies.
  topo::Graph leaf_spine() const { return topo::make_leaf_spine(x, y); }
  topo::Graph rrg() const { return topo::flatten_leaf_spine(x, y, seed); }
  topo::DRing dring() const {
    return topo::make_dring_equipment(num_switches(), ports_per_switch(),
                                      /*total_servers=*/-1, dring_supernodes);
  }

  // The paper's full-scale configuration: leaf-spine(48, 16) -> 64 racks,
  // 3072 servers; DRing with 12 supernodes, 80 racks, 2988 servers.
  static Scenario paper() {
    Scenario s;
    s.x = 48;
    s.y = 16;
    s.dring_supernodes = 12;
    return s;
  }

  // Fast default used by tests and bench defaults: same 3:1
  // oversubscription and switch roles at ~1/4 the port count.
  static Scenario small() { return Scenario{}; }
};

}  // namespace spineless::core
