#include "core/udf_report.h"

namespace spineless::core {
namespace {

TopologyReport report_for(const std::string& name, const topo::Graph& g,
                          std::uint64_t seed) {
  TopologyReport r;
  r.name = name;
  r.switches = g.num_switches();
  r.servers = g.total_servers();
  r.nsr = topo::network_server_ratio(g);
  r.paths = topo::path_length_stats(g);
  r.bisection_upper = topo::bisection_upper_bound(g, /*trials=*/200, seed);
  return r;
}

}  // namespace

UdfReport make_udf_report(const Scenario& s) {
  UdfReport rep;
  const auto ls = s.leaf_spine();
  const auto rrg = s.rrg();
  const auto dring = s.dring();
  rep.leaf_spine = report_for("leaf-spine", ls, s.seed);
  rep.rrg = report_for("RRG (flat)", rrg, s.seed);
  rep.dring = report_for("DRing (flat)", dring.graph, s.seed);
  rep.udf_closed_form = topo::leaf_spine_udf(s.x, s.y);
  rep.udf_rrg = topo::udf(ls, rrg);
  rep.udf_dring = topo::udf(ls, dring.graph);
  return rep;
}

}  // namespace spineless::core
