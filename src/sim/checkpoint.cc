#include "sim/checkpoint.h"

#include <algorithm>
#include <sstream>

#include "sim/network.h"
#include "sim/sharded_engine.h"
#include "util/fsio.h"

namespace spineless::sim {
namespace {

// Section tags after the summary, in the order they are written. Parts
// frame their state in their own section_tag() (kSectionPartTag unless
// overridden, e.g. the hybrid loop's kSectionHybrid — see checkpoint.h).
constexpr std::uint32_t kSectionPrio = 0x5052494f;     // "PRIO"
constexpr std::uint32_t kSectionNet = 0x4e455457;      // "NETW"
constexpr std::uint32_t kSectionEngine = 0x454e474e;   // "ENGN"
constexpr std::uint32_t kSectionGlobals = 0x474c424c;  // "GLBL"

// The forwarding path drops at hops > 64 (network.cc); any live packet
// above that escaped the TTL guard.
constexpr std::uint64_t kMaxLiveHops = 64;

}  // namespace

void SinkRegistry::add(EventSink* sink, CtxKind kind, int pool_shard) {
  SPINELESS_CHECK_MSG(sink->has_event_identity(),
                      "checkpoint: sink registered without a scheduling oid");
  const std::uint32_t oid = sink->event_oid();
  const bool inserted = by_oid_.emplace(oid, order_.size()).second;
  SPINELESS_CHECK_MSG(inserted, "checkpoint: duplicate oid " << oid
                                    << " in sink registry");
  order_.push_back(Entry{sink, kind, pool_shard});
}

const SinkRegistry::Entry& SinkRegistry::by_oid(std::uint32_t oid) const {
  const auto it = by_oid_.find(oid);
  SPINELESS_CHECK_MSG(it != by_oid_.end(),
                      "checkpoint: event for unregistered oid "
                          << oid << " — an experiment component was not "
                                    "added to the session");
  return order_[it->second];
}

void SinkRegistry::clear_and_reserve(std::size_t n) {
  order_.clear();
  by_oid_.clear();
  order_.reserve(n);
  by_oid_.reserve(n);
}

void PacketCodec::write(SnapshotWriter& w, const Packet& p) const {
  w.i64(static_cast<std::int64_t>(p.src_host));
  w.i64(static_cast<std::int64_t>(p.dst_host));
  w.i64(static_cast<std::int64_t>(p.dst_tor));
  w.i64(p.flow_id);
  w.i64(p.seq);
  w.u32(static_cast<std::uint32_t>(p.size_bytes));
  w.u8(p.is_ack ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(p.vrf));
  w.u8(p.hops);
  w.u8(p.ecn_ce ? 1 : 0);
  w.u8(p.corrupted ? 1 : 0);
  w.i64(p.ts);
  w.u8(p.route != nullptr ? 1 : 0);
  w.u8(p.route_idx);
}

Packet PacketCodec::read(SnapshotReader& r) const {
  Packet p;
  p.src_host = static_cast<topo::HostId>(r.i64());
  p.dst_host = static_cast<topo::HostId>(r.i64());
  p.dst_tor = static_cast<topo::NodeId>(r.i64());
  p.flow_id = static_cast<std::int32_t>(r.i64());
  p.seq = r.i64();
  p.size_bytes = static_cast<std::int32_t>(r.u32());
  p.is_ack = r.u8() != 0;
  p.vrf = static_cast<std::int8_t>(r.u8());
  p.hops = r.u8();
  p.ecn_ce = r.u8() != 0;
  p.corrupted = r.u8() != 0;
  p.ts = r.i64();
  const bool has_route = r.u8() != 0;
  p.route_idx = r.u8();
  // The route pointer aims into the owning Network's pinned route store;
  // re-resolve it by flow instead of serializing an address.
  if (has_route) p.route = net_.route_for(p.flow_id, p.is_ack);
  return p;
}

std::string AuditReport::to_string() const {
  if (ok()) return "audit: ok";
  std::ostringstream os;
  os << "audit: " << violations.size() << " invariant violation(s):";
  for (const AuditViolation& v : violations)
    os << "\n  [" << v.invariant << "] " << v.detail;
  return os.str();
}

// Uniform access to the one-or-many simulators behind an experiment. Index
// 0 is the serial simulator or the sharded engine's control simulator;
// 1..num_shards are the shard heaps.
struct CheckpointSession::EngineView {
  Simulator* serial = nullptr;
  ShardedEngine* sharded = nullptr;

  bool is_sharded() const noexcept { return sharded != nullptr; }
  int num_sims() const {
    return serial != nullptr ? 1 : sharded->num_shards() + 1;
  }
  Simulator& sim(int i) const {
    if (serial != nullptr) return *serial;
    return i == 0 ? sharded->control() : sharded->shard_mut(i - 1);
  }
};

CheckpointSession::CheckpointSession(Network& net, std::uint64_t config_hash)
    : net_(net), config_hash_(config_hash) {}

void CheckpointSession::build_registry() {
  // Construction order: the Network's own sinks first, then every part in
  // the order it was added (which must be its construction order).
  registry_.clear_and_reserve(0);
  net_.collect_sinks(registry_);
  for (Checkpointable* part : parts_) part->collect_sinks(registry_);
}

void CheckpointSession::write_events(
    SnapshotWriter& w, const PacketCodec& codec,
    const std::vector<Simulator::Event>& events) const {
  w.u64(events.size());
  for (const Simulator::Event& e : events) {
    const SinkRegistry::Entry& entry = registry_.by_oid(e.sink->event_oid());
    SPINELESS_CHECK_MSG(entry.sink == e.sink,
                        "checkpoint: pending event whose sink aliases a "
                        "registered oid but is not the registered sink");
    w.i64(e.t);
    w.u64(e.prio);
    w.u32(e.sink->event_oid());
    w.u8(static_cast<std::uint8_t>(entry.kind));
    if (entry.kind == CtxKind::kPacketNode) {
      codec.write(w, reinterpret_cast<const PacketNode*>(e.ctx)->pkt);
    } else {
      w.u64(e.ctx);
    }
  }
}

std::vector<Simulator::Event> CheckpointSession::read_events(
    SnapshotReader& r, const PacketCodec& codec) const {
  std::vector<Simulator::Event> events(r.u64());
  for (Simulator::Event& e : events) {
    e.t = r.i64();
    e.prio = r.u64();
    const std::uint32_t oid = r.u32();
    const auto kind = static_cast<CtxKind>(r.u8());
    const SinkRegistry::Entry& entry = registry_.by_oid(oid);
    SPINELESS_CHECK_MSG(static_cast<std::uint8_t>(entry.kind) ==
                            static_cast<std::uint8_t>(kind),
                        "checkpoint: event ctx kind mismatch for oid " << oid);
    e.sink = entry.sink;
    if (kind == CtxKind::kPacketNode) {
      e.ctx = reinterpret_cast<std::uint64_t>(
          net_.alloc_restored_node(entry.pool_shard, codec.read(r)));
    } else {
      e.ctx = r.u64();
    }
  }
  return events;
}

std::string CheckpointSession::save_view_bytes(const EngineView& view) {
  build_registry();
  const PacketCodec codec(net_);
  SnapshotWriter w(config_hash_);

  // Summary: the redundant totals the restore path (and the negative
  // tests) cross-check restored state against. Field order must match
  // SummaryField.
  std::uint64_t packet_events = 0;
  std::uint64_t max_hops = 0;
  for (int i = 0; i < view.num_sims(); ++i) {
    for (const Simulator::Event& e : view.sim(i).pending_events()) {
      const SinkRegistry::Entry& entry =
          registry_.by_oid(e.sink->event_oid());
      if (entry.kind != CtxKind::kPacketNode) continue;
      ++packet_events;
      max_hops = std::max(
          max_hops, std::uint64_t{
                        reinterpret_cast<const PacketNode*>(e.ctx)->pkt.hops});
    }
  }
  std::uint64_t queued_nodes = 0;
  std::uint64_t queued_bytes = 0;
  std::uint64_t processed = 0;
  net_.for_each_link([&](const Link& l) {
    const Link::QueueAudit a = l.audit_queue();
    queued_nodes += static_cast<std::uint64_t>(a.nodes);
    queued_bytes += static_cast<std::uint64_t>(a.bytes);
    max_hops = std::max(max_hops, static_cast<std::uint64_t>(a.max_hops));
  });
  for (int i = 0; i < view.num_sims(); ++i)
    processed += view.sim(i).events_processed();

  w.begin_section(kSectionSummary);
  w.u64(static_cast<std::uint64_t>(view.sim(0).now()));  // kSummaryNow
  w.u64(processed);                                      // kSummaryProcessed
  w.u64(packet_events);  // kSummaryPacketEvents
  w.u64(queued_nodes);   // kSummaryQueuedNodes
  w.u64(queued_bytes);   // kSummaryQueuedBytes
  w.u64(max_hops);       // kSummaryMaxHops
  w.end_section();

  // Live priority counters, registry order.
  w.begin_section(kSectionPrio);
  w.u64(registry_.size());
  for (std::size_t i = 0; i < registry_.size(); ++i)
    w.u64(registry_.at(i).sink->prio_state());
  w.end_section();

  w.begin_section(kSectionNet);
  net_.save_state(w, codec);
  w.end_section();

  for (const Checkpointable* part : parts_) {
    w.begin_section(part->section_tag());
    part->save_state(w);
    w.end_section();
  }

  for (int i = 0; i < view.num_sims(); ++i) {
    const Simulator& sim = view.sim(i);
    w.begin_section(kSectionEngine);
    w.i64(sim.now());
    w.u64(sim.events_processed());
    w.u64(sim.root_prio_state());
    w.u32(sim.lazy_oid_state());
    write_events(w, codec, sim.pending_events());
    w.end_section();
  }

  if (view.is_sharded()) {
    w.begin_section(kSectionGlobals);
    write_events(w, codec, view.sharded->pending_globals());
    w.end_section();
  }

  return w.seal();
}

void CheckpointSession::save_view(const std::string& path,
                                  const EngineView& view) {
  SPINELESS_CHECK_MSG(util::atomic_write_file(path, save_view_bytes(view)),
                      "checkpoint: failed to write snapshot to " << path);
}

bool CheckpointSession::restore_view(const std::string& path,
                                     const EngineView& view) {
  std::string bytes;
  if (!SnapshotReader::load_file(path, &bytes)) return false;
  restore_view_bytes(std::move(bytes), view);
  return true;
}

void CheckpointSession::restore_view_bytes(std::string bytes,
                                           const EngineView& view) {
  SnapshotReader r(std::move(bytes));
  if (r.config_hash() != config_hash_) {
    throw Error(
        "checkpoint: snapshot configuration hash does not match this "
        "experiment (different seed/topology/routing/intra_jobs?)");
  }
  build_registry();
  const PacketCodec codec(net_);

  r.expect_section(kSectionSummary);
  const std::uint64_t sum_now = r.u64();
  const std::uint64_t sum_processed = r.u64();
  const std::uint64_t sum_packet_events = r.u64();
  const std::uint64_t sum_queued_nodes = r.u64();
  const std::uint64_t sum_queued_bytes = r.u64();
  const std::uint64_t sum_max_hops = r.u64();
  r.end_section();

  r.expect_section(kSectionPrio);
  SPINELESS_CHECK_MSG(r.u64() == registry_.size(),
                      "checkpoint: sink count mismatch — the experiment was "
                      "not reconstructed identically");
  for (std::size_t i = 0; i < registry_.size(); ++i)
    registry_.at(i).sink->restore_prio_state(r.u64());
  r.end_section();

  r.expect_section(kSectionNet);
  net_.load_state(r, codec);
  r.end_section();

  for (Checkpointable* part : parts_) {
    r.expect_section(part->section_tag());
    part->load_state(r);
    r.end_section();
  }

  for (int i = 0; i < view.num_sims(); ++i) {
    r.expect_section(kSectionEngine);
    const Time now = r.i64();
    const std::uint64_t processed = r.u64();
    const std::uint64_t root_key = r.u64();
    const std::uint32_t lazy_oid = r.u32();
    std::vector<Simulator::Event> events = read_events(r, codec);
    r.end_section();
    view.sim(i).restore_state(now, processed, root_key, lazy_oid,
                              std::move(events));
  }

  if (view.is_sharded()) {
    r.expect_section(kSectionGlobals);
    view.sharded->restore_globals(read_events(r, codec));
    r.end_section();
  }
  SPINELESS_CHECK_MSG(r.at_end(), "checkpoint: trailing sections in snapshot");

  // Cross-check the restored state against the snapshot's own summary —
  // this is what turns a corrupted-but-checksum-valid snapshot (or a state
  // bug) into a named invariant violation instead of a wrong result.
  AuditReport report = audit_view(view);
  const auto violated = [&report](const std::string& invariant,
                                  const std::string& detail) {
    report.violations.push_back({invariant, detail});
  };
  if (static_cast<std::uint64_t>(view.sim(0).now()) != sum_now) {
    std::ostringstream os;
    os << "restored clock " << view.sim(0).now()
       << " != snapshot summary now " << sum_now;
    violated("monotonic_event_time", os.str());
  }
  std::uint64_t processed = 0;
  for (int i = 0; i < view.num_sims(); ++i)
    processed += view.sim(i).events_processed();
  if (processed != sum_processed) {
    std::ostringstream os;
    os << "restored event count " << processed << " != snapshot summary "
       << sum_processed;
    violated("monotonic_event_time", os.str());
  }
  std::uint64_t packet_events = 0;
  for (int i = 0; i < view.num_sims(); ++i)
    for (const Simulator::Event& e : view.sim(i).pending_events())
      if (registry_.by_oid(e.sink->event_oid()).kind == CtxKind::kPacketNode)
        ++packet_events;
  std::uint64_t queued_nodes = 0;
  std::uint64_t queued_bytes = 0;
  std::uint64_t max_hops = 0;
  net_.for_each_link([&](const Link& l) {
    const Link::QueueAudit a = l.audit_queue();
    queued_nodes += static_cast<std::uint64_t>(a.nodes);
    queued_bytes += static_cast<std::uint64_t>(a.bytes);
    max_hops = std::max(max_hops, static_cast<std::uint64_t>(a.max_hops));
  });
  if (packet_events != sum_packet_events ||
      queued_nodes != sum_queued_nodes) {
    std::ostringstream os;
    os << "restored in-flight " << packet_events << " + queued "
       << queued_nodes << " packets != snapshot summary "
       << sum_packet_events << " + " << sum_queued_nodes;
    violated("packet_conservation", os.str());
  }
  if (queued_bytes != sum_queued_bytes) {
    std::ostringstream os;
    os << "restored queue occupancy " << queued_bytes
       << " bytes != snapshot summary " << sum_queued_bytes;
    violated("queue_occupancy", os.str());
  }
  if (sum_max_hops > kMaxLiveHops) {
    std::ostringstream os;
    os << "snapshot summary max hops " << sum_max_hops
       << " exceeds the TTL bound " << kMaxLiveHops;
    violated("ttl", os.str());
  }
  if (max_hops > sum_max_hops) {
    std::ostringstream os;
    os << "restored packet with " << max_hops
       << " hops exceeds snapshot summary " << sum_max_hops;
    violated("ttl", os.str());
  }
  if (!report.ok()) throw Error("checkpoint restore: " + report.to_string());
}

AuditReport CheckpointSession::audit_view(const EngineView& view) {
  AuditReport report;
  const auto violated = [&report](const std::string& invariant,
                                  const std::string& detail) {
    report.violations.push_back({invariant, detail});
  };

  // Monotonic event time: every pending event fires at or after its
  // simulator's clock (all clocks are parked at the same boundary).
  std::uint64_t packet_events = 0;
  std::uint64_t max_hops = 0;
  for (int i = 0; i < view.num_sims(); ++i) {
    const Simulator& sim = view.sim(i);
    for (const Simulator::Event& e : sim.pending_events()) {
      if (e.t < sim.now()) {
        std::ostringstream os;
        os << "pending event at t=" << e.t << " is before now=" << sim.now();
        violated("monotonic_event_time", os.str());
      }
      const SinkRegistry::Entry& entry =
          registry_.by_oid(e.sink->event_oid());
      if (entry.kind != CtxKind::kPacketNode) continue;
      ++packet_events;
      max_hops = std::max(
          max_hops, std::uint64_t{
                        reinterpret_cast<const PacketNode*>(e.ctx)->pkt.hops});
    }
  }

  // Queue occupancy: per-link byte accounting and busy flags consistent,
  // totals non-negative.
  std::uint64_t queued_nodes = 0;
  std::size_t link_idx = 0;
  net_.for_each_link([&](const Link& l) {
    const Link::QueueAudit a = l.audit_queue();
    queued_nodes += static_cast<std::uint64_t>(a.nodes);
    max_hops = std::max(max_hops, static_cast<std::uint64_t>(a.max_hops));
    if (!a.bytes_consistent) {
      std::ostringstream os;
      os << "link #" << link_idx << " queued_bytes counter disagrees with "
         << "its FIFO contents (" << a.bytes << " walked)";
      violated("queue_occupancy", os.str());
    }
    if (!a.busy_consistent) {
      std::ostringstream os;
      os << "link #" << link_idx << " busy flag disagrees with its FIFO";
      violated("queue_occupancy", os.str());
    }
    ++link_idx;
  });

  // Packet conservation: every pool node either sits in a queue or rides a
  // pending propagation event; created = delivered + dropped + in-flight
  // holds because delivery and every drop release the node.
  const std::int64_t in_use = net_.pool_nodes_in_use();
  if (in_use !=
      static_cast<std::int64_t>(queued_nodes) +
          static_cast<std::int64_t>(packet_events)) {
    std::ostringstream os;
    os << "pool nodes in use " << in_use << " != queued " << queued_nodes
       << " + in-flight " << packet_events;
    violated("packet_conservation", os.str());
  }

  // TTL: no live packet above the forwarding drop bound — a higher count
  // means a routing loop escaped the guard.
  if (max_hops > kMaxLiveHops) {
    std::ostringstream os;
    os << "live packet with " << max_hops << " hops exceeds the TTL bound "
       << kMaxLiveHops;
    violated("ttl", os.str());
  }
  return report;
}

void CheckpointSession::save(const std::string& path, const Simulator& sim) {
  EngineView view;
  // Save only reads; the view is shared with the mutating restore path.
  view.serial = const_cast<Simulator*>(&sim);
  save_view(path, view);
}

void CheckpointSession::save(const std::string& path,
                             const ShardedEngine& eng) {
  EngineView view;
  view.sharded = const_cast<ShardedEngine*>(&eng);
  save_view(path, view);
}

bool CheckpointSession::restore(const std::string& path, Simulator& sim) {
  EngineView view;
  view.serial = &sim;
  return restore_view(path, view);
}

bool CheckpointSession::restore(const std::string& path, ShardedEngine& eng) {
  EngineView view;
  view.sharded = &eng;
  return restore_view(path, view);
}

std::string CheckpointSession::save_bytes(const Simulator& sim) {
  EngineView view;
  view.serial = const_cast<Simulator*>(&sim);
  return save_view_bytes(view);
}

std::string CheckpointSession::save_bytes(const ShardedEngine& eng) {
  EngineView view;
  view.sharded = const_cast<ShardedEngine*>(&eng);
  return save_view_bytes(view);
}

void CheckpointSession::restore_bytes(const std::string& bytes,
                                      Simulator& sim) {
  EngineView view;
  view.serial = &sim;
  restore_view_bytes(bytes, view);
}

void CheckpointSession::restore_bytes(const std::string& bytes,
                                      ShardedEngine& eng) {
  EngineView view;
  view.sharded = &eng;
  restore_view_bytes(bytes, view);
}

AuditReport CheckpointSession::audit(const Simulator& sim) {
  EngineView view;
  view.serial = const_cast<Simulator*>(&sim);
  build_registry();
  return audit_view(view);
}

AuditReport CheckpointSession::audit(const ShardedEngine& eng) {
  EngineView view;
  view.sharded = const_cast<ShardedEngine*>(&eng);
  build_registry();
  return audit_view(view);
}

std::string section_tag_name(std::uint32_t tag) {
  std::string name;
  for (int shift = 24; shift >= 0; shift -= 8) {
    const char c = static_cast<char>((tag >> shift) & 0xff);
    name += (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return name;
}

void write_section_version(SnapshotWriter& w, std::uint32_t tag,
                           std::uint32_t version) {
  w.u64((static_cast<std::uint64_t>(tag) << 32) | version);
}

void expect_section_version(SnapshotReader& r, std::uint32_t tag,
                            std::uint32_t version) {
  const std::uint64_t word = r.u64();
  const auto got_tag = static_cast<std::uint32_t>(word >> 32);
  const auto got_version = static_cast<std::uint32_t>(word);
  if (got_tag != tag) {
    // Pre-versioning payloads started with ordinary state words whose high
    // half never spells the section tag.
    throw Error("snapshot section '" + section_tag_name(tag) +
                "': payload predates section versioning (no version "
                "header) — re-create the snapshot with this build");
  }
  if (got_version != version) {
    throw Error("snapshot section '" + section_tag_name(tag) + "' version " +
                std::to_string(got_version) + ", expected " +
                std::to_string(version) +
                " — snapshot was written by an incompatible build");
  }
}

}  // namespace spineless::sim
