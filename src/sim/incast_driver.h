// Drives partition-aggregate queries (workload::IncastQuery) through the
// packet simulator: one TCP flow per worker response, all released at the
// query's start time; QCT = last response completion - start.
#pragma once

#include <vector>

#include "sim/tcp.h"
#include "workload/incast.h"

namespace spineless::sim {

class IncastDriver {
 public:
  IncastDriver(Network& net, const TcpConfig& cfg) : driver_(net, cfg) {}

  // Returns the query id.
  int add_query(Simulator& sim, const workload::IncastQuery& q);

  std::size_t num_queries() const noexcept { return groups_.size(); }
  std::size_t completed_queries() const;
  // QCT per completed query, in milliseconds.
  Summary qct_ms() const;

 private:
  struct Group {
    std::vector<std::size_t> members;
    Time start = 0;
  };
  FlowDriver driver_;
  std::vector<Group> groups_;
};

}  // namespace spineless::sim
