#include "sim/tcp.h"

#include <algorithm>
#include <cmath>

namespace spineless::sim {
namespace {

constexpr std::uint64_t kStartCtx = 0;
constexpr std::uint64_t kRtoCtx = 1;

std::int64_t packets_for(std::int64_t bytes) {
  return (bytes + kMss - 1) / kMss;
}

}  // namespace

TcpSource::TcpSource(Network& net, std::int32_t flow_id, topo::HostId src,
                     topo::HostId dst, std::int64_t bytes,
                     const TcpConfig& cfg)
    : net_(net),
      cfg_(cfg),
      src_(src),
      dst_(dst),
      dst_tor_(net.graph().tor_of_host(dst)),
      total_pkts_(packets_for(bytes)),
      sink_(std::make_unique<TcpSink>(net, flow_id)),
      cwnd_(cfg.init_cwnd_pkts),
      rto_(cfg.min_rto) {
  SPINELESS_CHECK(bytes > 0);
  SPINELESS_CHECK(src != dst);
  record_.flow_id = flow_id;
  record_.bytes = bytes;
  net_.register_flow(flow_id, this, sink_.get());
  // Deterministic scheduling identity, drawn in flow-construction order;
  // the source's timers execute in its host's shard (ACKs already arrive
  // there — a host shares its ToR's shard).
  set_event_identity(net.next_oid(), net.shard_of_host(src));
}

TcpSource::~TcpSource() = default;

void TcpSource::start_at(Simulator& sim, Time t) {
  record_.start = t;
  sim.schedule_at(t, this, kStartCtx);
}

void TcpSource::on_event(Simulator& sim, std::uint64_t ctx) {
  if (ctx == kStartCtx) {
    started_ = true;
    send_available(sim);
    arm_rto(sim);
    return;
  }
  // RTO timer fired. A fire before the current deadline is stale: make
  // sure some pending event covers the deadline and die; a fire at or
  // past the deadline is a real timeout.
  SPINELESS_DCHECK(!pending_fires_.empty());
  pending_fires_.pop_back();  // events fire earliest-first = back()
  if (record_.completed()) return;
  if (sim.now() < rto_deadline_) {
    schedule_rto_event(sim);
    return;
  }
  handle_timeout(sim);
}

void TcpSource::transmit(Simulator& sim, std::int64_t seq) {
  Packet pkt;
  pkt.src_host = src_;
  pkt.dst_host = dst_;
  pkt.dst_tor = dst_tor_;
  pkt.flow_id = record_.flow_id;
  pkt.seq = seq;
  pkt.size_bytes = kDataPacketBytes;
  pkt.is_ack = false;
  pkt.ts = sim.now();
  net_.inject_from_host(sim, pkt);
}

void TcpSource::send_available(Simulator& sim) {
  const auto window = static_cast<std::int64_t>(cwnd_);
  while (snd_next_ < total_pkts_ && snd_next_ - cum_ < window) {
    transmit(sim, snd_next_);
    ++snd_next_;
  }
}

void TcpSource::arm_rto(Simulator& sim) {
  const Time timeout = std::min(cfg_.max_rto, rto_ << std::min(backoff_, 6));
  rto_deadline_ = sim.now() + timeout;
  schedule_rto_event(sim);
}

void TcpSource::schedule_rto_event(Simulator& sim) {
  // Schedule only if no pending event fires at or before the deadline —
  // an earlier pending fire will re-check the deadline and re-arm, so it
  // covers detection; a later-only pending set would detect the loss at
  // the stale (possibly backed-off, up to ~64x) time.
  if (pending_fires_.empty() || rto_deadline_ < pending_fires_.back()) {
    pending_fires_.push_back(rto_deadline_);
    sim.schedule_at(rto_deadline_, this, kRtoCtx);
  }
}

void TcpSource::note_rtt_sample(Time rtt) {
  if (srtt_ == 0) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
  } else {
    const Time err = std::abs(srtt_ - rtt);
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + rtt) / 8;
  }
  rto_ = std::max(cfg_.min_rto, srtt_ + 4 * rttvar_);
}

void TcpSource::on_packet(Simulator& sim, const Packet& ack) {
  SPINELESS_DCHECK(ack.is_ack);
  if (record_.completed()) return;
  if (ack.seq > cum_) {
    handle_new_ack(sim, ack.seq, ack.ts, ack.ecn_ce);
  } else {
    handle_dup_ack(sim);
  }
}

void TcpSource::dctcp_on_ack(std::int64_t delta, bool marked) {
  dctcp_acked_ += delta;
  if (marked) dctcp_marked_ += delta;
  // RFC 8257: a mark during slow start ends slow start immediately —
  // without this, exponential growth overshoots far past the marking
  // threshold before the first proportional cut lands.
  if (marked && cwnd_ < ssthresh_) ssthresh_ = cwnd_;
  if (cum_ < dctcp_window_end_) return;
  // One observation window (~RTT) has passed: update alpha and, if any
  // marks were seen, apply the proportional cut once.
  const double f = dctcp_acked_ > 0
                       ? static_cast<double>(dctcp_marked_) /
                             static_cast<double>(dctcp_acked_)
                       : 0.0;
  dctcp_alpha_ = (1.0 - cfg_.dctcp_gain) * dctcp_alpha_ + cfg_.dctcp_gain * f;
  if (dctcp_marked_ > 0 && !in_recovery_) {
    cwnd_ = std::max(2.0, cwnd_ * (1.0 - dctcp_alpha_ / 2.0));
    ssthresh_ = cwnd_;
  }
  dctcp_marked_ = 0;
  dctcp_acked_ = 0;
  dctcp_window_end_ = snd_next_;
}

void TcpSource::handle_new_ack(Simulator& sim, std::int64_t acked,
                               Time echoed_ts, bool marked) {
  const std::int64_t delta = acked - cum_;
  cum_ = acked;
  dupacks_ = 0;
  backoff_ = 0;
  note_rtt_sample(sim.now() - echoed_ts);
  if (cfg_.dctcp) dctcp_on_ack(delta, marked);

  if (in_recovery_) {
    if (acked >= recover_) {
      // Full ACK: leave fast recovery, deflate to ssthresh.
      in_recovery_ = false;
      cwnd_ = std::max(2.0, ssthresh_);
    } else {
      // NewReno partial ACK: the next segment is lost too; retransmit it
      // and stay in recovery.
      transmit(sim, cum_);
      ++record_.retransmits;
      cwnd_ = std::max(2.0, cwnd_ - static_cast<double>(delta) + 1.0);
    }
  } else if (cwnd_ < ssthresh_) {
    cwnd_ += static_cast<double>(delta);  // slow start
  } else {
    cwnd_ += static_cast<double>(delta) / cwnd_;  // congestion avoidance
  }

  if (cum_ >= total_pkts_) {
    record_.finish = sim.now();
    // Any pending timer fires once more, sees completed(), and dies.
    return;
  }
  send_available(sim);
  arm_rto(sim);
}

void TcpSource::handle_dup_ack(Simulator& sim) {
  ++dupacks_;
  if (!in_recovery_ && dupacks_ == 3) {
    in_recovery_ = true;
    recover_ = snd_next_;
    const double inflight = static_cast<double>(snd_next_ - cum_);
    ssthresh_ = std::max(2.0, inflight / 2.0);
    cwnd_ = ssthresh_ + 3;
    transmit(sim, cum_);  // fast retransmit of the missing segment
    ++record_.retransmits;
    arm_rto(sim);
  } else if (in_recovery_) {
    cwnd_ += 1.0;  // window inflation per extra dup ACK
    send_available(sim);
  }
}

void TcpSource::handle_timeout(Simulator& sim) {
  ++record_.timeouts;
  if (started_ && cum_ < total_pkts_) {
    const double inflight = static_cast<double>(snd_next_ - cum_);
    ssthresh_ = std::max(2.0, inflight / 2.0);
    cwnd_ = cfg_.init_cwnd_pkts > 1 ? 1.0 : cfg_.init_cwnd_pkts;
    in_recovery_ = false;
    dupacks_ = 0;
    snd_next_ = cum_;  // go-back-N
    ++backoff_;
    ++record_.retransmits;
    send_available(sim);
  }
  arm_rto(sim);
}

void TcpSink::on_packet(Simulator& sim, const Packet& data) {
  SPINELESS_DCHECK(!data.is_ack);
  const auto idx = static_cast<std::size_t>(data.seq);
  if (received_.size() <= idx) received_.resize(idx + 1, false);
  received_[idx] = true;
  while (next_expected_ < static_cast<std::int64_t>(received_.size()) &&
         received_[static_cast<std::size_t>(next_expected_)]) {
    ++next_expected_;
  }
  if (ack_dst_ != data.src_host) {  // resolved once; constant per flow
    ack_dst_ = data.src_host;
    ack_tor_ = net_.graph().tor_of_host(data.src_host);
  }
  Packet ack;
  ack.src_host = data.dst_host;
  ack.dst_host = data.src_host;
  ack.dst_tor = ack_tor_;
  ack.flow_id = flow_id_;
  ack.seq = next_expected_;
  ack.size_bytes = kAckPacketBytes;
  ack.is_ack = true;
  ack.ecn_ce = data.ecn_ce;  // precise ECN echo (DCTCP)
  ack.ts = data.ts;  // echo for RTT estimation
  net_.inject_from_host(sim, ack);
}

void TcpSource::save_state(SnapshotWriter& w) const {
  w.i64(snd_next_);
  w.i64(cum_);
  w.f64(cwnd_);
  w.f64(ssthresh_);
  w.u32(static_cast<std::uint32_t>(dupacks_));
  w.u8(in_recovery_ ? 1 : 0);
  w.i64(recover_);
  w.f64(dctcp_alpha_);
  w.i64(dctcp_marked_);
  w.i64(dctcp_acked_);
  w.i64(dctcp_window_end_);
  w.i64(srtt_);
  w.i64(rttvar_);
  w.i64(rto_);
  w.u32(static_cast<std::uint32_t>(backoff_));
  w.i64(rto_deadline_);
  w.u64(pending_fires_.size());
  for (Time t : pending_fires_) w.i64(t);
  w.i64(record_.start);
  w.i64(record_.finish);
  w.i64(record_.retransmits);
  w.i64(record_.timeouts);
  w.u8(started_ ? 1 : 0);
  sink_->save_state(w);
}

void TcpSource::load_state(SnapshotReader& r) {
  snd_next_ = r.i64();
  cum_ = r.i64();
  cwnd_ = r.f64();
  ssthresh_ = r.f64();
  dupacks_ = static_cast<int>(r.u32());
  in_recovery_ = r.u8() != 0;
  recover_ = r.i64();
  dctcp_alpha_ = r.f64();
  dctcp_marked_ = r.i64();
  dctcp_acked_ = r.i64();
  dctcp_window_end_ = r.i64();
  srtt_ = r.i64();
  rttvar_ = r.i64();
  rto_ = r.i64();
  backoff_ = static_cast<int>(r.u32());
  rto_deadline_ = r.i64();
  pending_fires_.clear();
  const std::uint64_t fires = r.u64();
  pending_fires_.reserve(fires);
  for (std::uint64_t i = 0; i < fires; ++i) pending_fires_.push_back(r.i64());
  record_.start = r.i64();
  record_.finish = r.i64();
  record_.retransmits = r.i64();
  record_.timeouts = r.i64();
  started_ = r.u8() != 0;
  sink_->load_state(r);
}

void TcpSink::save_state(SnapshotWriter& w) const {
  w.i64(next_expected_);
  w.u64(received_.size());
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < received_.size(); ++i) {
    if (received_[i]) word |= std::uint64_t{1} << (i % 64);
    if (i % 64 == 63) {
      w.u64(word);
      word = 0;
    }
  }
  if (received_.size() % 64 != 0) w.u64(word);
  w.i64(static_cast<std::int64_t>(ack_dst_));
  w.i64(static_cast<std::int64_t>(ack_tor_));
}

void TcpSink::load_state(SnapshotReader& r) {
  next_expected_ = r.i64();
  const std::uint64_t n = r.u64();
  received_.assign(n, false);
  std::uint64_t word = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (i % 64 == 0) word = r.u64();
    received_[i] = ((word >> (i % 64)) & 1) != 0;
  }
  ack_dst_ = static_cast<topo::HostId>(r.i64());
  ack_tor_ = static_cast<topo::NodeId>(r.i64());
}

std::int32_t FlowDriver::add_flow(Simulator& sim, topo::HostId src,
                                  topo::HostId dst, std::int64_t bytes,
                                  Time start) {
  const auto id = static_cast<std::int32_t>(flows_.size());
  flows_.push_back(
      std::make_unique<TcpSource>(net_, id, src, dst, bytes, cfg_));
  flows_.back()->start_at(sim, start);
  return id;
}

void FlowDriver::collect_sinks(SinkRegistry& reg) {
  // Source timers carry plain ctx words (kStartCtx / kRtoCtx); sinks are
  // Endpoints, not EventSinks, so the sources are the only entries.
  for (auto& f : flows_) reg.add(f.get(), CtxKind::kPlain);
}

void FlowDriver::save_state(SnapshotWriter& w) const {
  w.u64(flows_.size());
  for (const auto& f : flows_) f->save_state(w);
}

void FlowDriver::load_state(SnapshotReader& r) {
  SPINELESS_CHECK_MSG(
      r.u64() == flows_.size(),
      "snapshot flow count does not match the reconstructed workload");
  for (auto& f : flows_) f->load_state(r);
}

std::size_t FlowDriver::completed_flows() const {
  std::size_t n = 0;
  for (const auto& f : flows_) n += f->record().completed();
  return n;
}

Summary FlowDriver::fct_ms() const {
  Summary s;
  for (const auto& f : flows_) {
    if (f->record().completed())
      s.add(units::to_millis(f->record().fct()));
  }
  return s;
}

std::int64_t FlowDriver::total_retransmits() const {
  std::int64_t n = 0;
  for (const auto& f : flows_) n += f->record().retransmits;
  return n;
}

}  // namespace spineless::sim
