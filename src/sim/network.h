// The simulated data-center network: one switch device per topology node,
// one host device per server, two unidirectional Links per cable (and per
// host NIC). Forwarding is hop-by-hop with per-flow hashing:
//
//  * kEcmp          — shortest-path ECMP next-hop sets (EcmpTable), the
//                     standard leaf-spine deployment;
//  * kShortestUnion — VRF-tagged forwarding over the §4 gadget (VrfTable):
//                     packets carry their VRF level, each hop hashes over
//                     the BGP-multipath next hops of (vrf, switch, dst) and
//                     rewrites the level. This is exactly what the
//                     BGP+VRF configuration installs in hardware.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "routing/ecmp.h"
#include "routing/types.h"
#include "routing/vrf.h"
#include "sim/link.h"
#include "sim/packet.h"
#include "sim/packet_pool.h"
#include "sim/simulator.h"
#include "topo/graph.h"
#include "util/rng.h"
#include "util/runner.h"
#include "util/stats.h"

namespace spineless::sim {

class SinkRegistry;

using topo::Graph;
using topo::HostId;
using topo::NodeId;

enum class RoutingMode {
  kEcmp,
  kShortestUnion,
  // Pinned per-flow paths installed via Network::set_flow_routes — models
  // k-shortest-path source routing (Jellyfish) and VLB path sets, the
  // non-standard baselines of §2.
  kSourceRouted,
};

struct NetworkConfig {
  std::int64_t link_rate_bps = units::gbps(10);
  // Host NIC rate; 0 means same as link_rate_bps. Lets experiments model
  // the heterogeneous line speeds §5.1 leaves to future work.
  std::int64_t host_rate_bps = 0;
  Time link_delay = 1 * units::kMicrosecond;  // propagation + processing
  std::int64_t queue_bytes = 100 * kDataPacketBytes;  // shallow DC buffers
  RoutingMode mode = RoutingMode::kEcmp;
  int su_k = 2;  // K of Shortest-Union(K) in kShortestUnion mode
  // Flowlet switching (Kassing et al. / CONGA-style): when > 0, a switch
  // re-hashes a flow's next hop after an idle gap longer than this,
  // letting hashed modes rebalance mid-flow. 0 = per-flow hashing.
  Time flowlet_gap = 0;
  // Weighted Shortest-Union splitting (WCMP-style): hash traffic over the
  // VRF next hops proportionally to the number of minimum-cost paths
  // through each, instead of equally. Only meaningful in kShortestUnion.
  bool weighted_su = false;
  // ECN marking threshold per queue (bytes); 0 disables marking. Pair with
  // TcpConfig::dctcp for DCTCP transport. The DCTCP paper's guidance is
  // K ~ 20-65 packets at 10G; default when enabled: 20 packets.
  std::int64_t ecn_threshold_bytes = 0;
  // Record the switch-level path of each flow's first data packet —
  // lets tests assert that forwarding really uses (only) the intended
  // path sets. Off by default (costs a per-packet branch).
  bool trace_paths = false;
  // Re-validate forwarding tables (loop-freedom, distances, dead-link
  // avoidance) after every reconverge_tables(). The check re-runs a BFS
  // per destination — O(V*E) per dst — so it is off by default and meant
  // for tests and debugging, not release benches.
  bool validate_tables = false;
  std::uint64_t ecmp_salt = 0x5eedULL;
  // Number of shards for deterministic intra-cell parallelism: switches
  // (with their hosts, flows, and NICs) are block-partitioned into this
  // many shards, each with its own event heap and packet pool, advanced by
  // sim::ShardedEngine in lookahead-wide windows. Route-table construction
  // fans destinations over the same number of workers. 1 = the plain
  // serial engine; results are byte-identical either way. Clamped to the
  // switch count.
  int intra_jobs = 1;
  // OS threads backing the sharded engine's reactors. 0 = auto:
  // min(shards, hardware_concurrency), so on a single-core host all shard
  // pollers multiplex cooperatively onto the calling thread and the engine
  // pays no context switches. N > 0 forces exactly N reactors (clamped to
  // the shard count) — the TSAN determinism tests force one thread per
  // shard so the lock-free rings are exercised concurrently even on small
  // hosts. Results are byte-identical for every value; this knob is not
  // part of the experiment configuration hash.
  int reactor_threads = 0;
  // Pin each reactor thread to a core (pthread_setaffinity_np, reactor r ->
  // core r mod hardware_concurrency) when the host has more than one core.
  // Pure scheduling hint: results are byte-identical pinned or not, so like
  // reactor_threads it stays outside the experiment configuration hash.
  bool pin_reactors = false;
  // Workers for route-table construction. 0 = inherit intra_jobs (tables
  // fan over the shard count). N > 1 parallelizes the per-destination BFS
  // even for serial-engine cells — at 10k+ switches table build otherwise
  // dominates cell setup. The table contents are identical for every value,
  // so like reactor_threads this stays outside the configuration hash.
  int table_jobs = 0;
};

// A TCP source or sink — receives the packets addressed to its flow.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_packet(Simulator& sim, const Packet& pkt) = 0;
};

// Receiver hook for in-band control packets (the fault layer's BFD-style
// hellos, flow_id < 0): switches hand them here instead of forwarding.
// Called in the receiving switch's shard — implementations must only touch
// state owned by that shard (or schedule events) from this callback.
class HelloHandler {
 public:
  virtual ~HelloHandler() = default;
  virtual void on_hello(Simulator& sim, const Packet& pkt) = 0;
};

class Network {
 public:
  Network(const Graph& g, const NetworkConfig& cfg);
  ~Network();  // out-of-line: SwitchDev/HostDev are incomplete here

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Graph& graph() const noexcept { return graph_; }
  const NetworkConfig& config() const noexcept { return cfg_; }

  // Endpoint registration, indexed by flow id (sources receive ACKs, sinks
  // receive data). Flow ids must be dense from 0.
  void register_flow(std::int32_t flow_id, Endpoint* source, Endpoint* sink);

  // kSourceRouted mode: pins the flow's forward path (src ToR .. dst ToR,
  // inclusive) — data packets follow it, ACKs follow its reverse. The
  // Network stores the paths; they must be valid switch paths.
  void set_flow_routes(std::int32_t flow_id, routing::Path forward);

  // Host NIC entry point: stamps the VRF level and queues on the uplink.
  void inject_from_host(Simulator& sim, Packet pkt);

  struct NetStats {
    std::int64_t queue_drops = 0;  // drop-tail losses on any link
    std::int64_t ttl_drops = 0;    // forwarding-loop guard (should be 0)
    std::int64_t no_route_drops = 0;  // table had no surviving next hop
    std::int64_t delivered = 0;    // packets handed to endpoints
    // Fault-layer accounting. blackhole_drops and gray_drops are subsets
    // of queue_drops (a downed or gray link still "ate" the packet);
    // corrupt_drops are packets that traversed the fabric but failed the
    // receiver's checksum. delivered_bytes counts payload bytes of
    // delivered data packets — the degradation monitor's goodput basis.
    std::int64_t blackhole_drops = 0;
    std::int64_t gray_drops = 0;
    std::int64_t corrupt_drops = 0;
    std::int64_t delivered_bytes = 0;
  };
  NetStats stats() const;

  // Peak queue occupancy across switch-switch links (diagnostics).
  std::int64_t max_network_queue_bytes() const;

  // The shard-0 packet-buffer pool (diagnostics: pooling tests assert its
  // block count plateaus across back-to-back experiments; serial networks
  // have exactly one pool).
  const PacketPool& packet_pool() const noexcept { return *pools_[0]; }

  // --- Sharding (NetworkConfig::intra_jobs; see sim/sharded_engine.h) ---
  int num_shards() const noexcept { return num_shards_; }
  bool sharded() const noexcept { return num_shards_ > 1; }
  int shard_of_switch(NodeId n) const {
    return switch_shard_[static_cast<std::size_t>(n)];
  }
  int shard_of_host(HostId h) const {
    return shard_of_switch(graph_.tor_of_host(h));
  }
  // Hands out the next deterministic scheduling oid (see EventSink). The
  // Network consumes ids for its own links/devices at construction;
  // dynamically created sinks (TcpSource, failure events, monitors) draw
  // theirs in construction order, which experiments keep identical across
  // serial and sharded runs.
  std::uint32_t next_oid() noexcept { return next_oid_++; }
  // Registers a sink that must execute barrier-synchronized with respect
  // to every shard (monitors and other whole-network observers).
  void register_global_sink(EventSink* sink) {
    sink->set_event_identity(next_oid(), EventSink::kShardGlobal);
  }

  // Wall seconds spent building forwarding tables (construction plus every
  // reconvergence) — surfaces setup vs. simulate time in BENCH_*.json.
  double table_build_seconds() const noexcept { return table_build_s_; }

  // --- Mid-simulation link failures (the §7 failure questions at the
  // data plane) ---
  // Takes the physical link down immediately: both directions drop all
  // packets offered to them (blackholing) until routing reconverges.
  void take_link_down(topo::LinkId link);
  void bring_link_up(topo::LinkId link);
  // Recomputes the forwarding tables excluding currently-down links —
  // what the control plane installs once it has reconverged. Destinations
  // cut off entirely get empty next-hop sets (counted as no_route_drops).
  // Only the table the routing mode actually forwards with is recomputed.
  void reconverge_tables();
  // Convenience: schedule a failure at `at` and the table update at
  // `at + reconvergence_delay` (the control-plane convergence window).
  // This is the *oracle* model (the control plane learns of the failure by
  // magic); the fault layer (src/fault) replaces it with in-band BFD
  // detection driving the primitives below.
  void schedule_link_failure(Simulator& sim, topo::LinkId link, Time at,
                             Time reconvergence_delay);

  // --- Fault-layer primitives (src/fault). All of these mutate whole-
  // network state and must run from a global (barrier-synchronized) event
  // in sharded runs, exactly like take_link_down/reconverge_tables. ---
  // Physical link state only: a downed pair blackholes traffic but the
  // tables still point at it until the control plane reacts.
  void set_link_phys(topo::LinkId link, bool up);
  bool link_phys_down(topo::LinkId link) const {
    return net_links_[2 * static_cast<std::size_t>(link)].is_down();
  }
  // Gray failure / port degradation on both directions of a link; `seed`
  // is mixed per direction so the two streams are independent.
  void set_link_gray(topo::LinkId link, double drop_prob, double corrupt_prob,
                     std::uint64_t seed);
  void clear_link_gray(topo::LinkId link);
  void set_link_rate_factor(topo::LinkId link, double factor);
  // Control-plane view: marks the link (not) to be used by forwarding
  // tables. Takes effect at the next repair_tables() call.
  void set_link_routed_out(topo::LinkId link, bool out);
  bool link_routed_out(topo::LinkId link) const {
    return down_links_.contains(link);
  }
  // Incremental reconvergence: computes which destinations the links whose
  // routed-out state changed since the installed tables can affect
  // (EcmpTable/VrfTable::destinations_affected_by) and recomputes only
  // those — a delta repair instead of reconverge_tables()'s full rebuild.
  // Falls back to the full rebuild when more than half the destinations
  // are affected. Time is accumulated into table_build_seconds().
  void repair_tables();

  // Enqueues a BFD-style hello (flow_id = kCtrlFlowId, 64 bytes) on
  // direction `dir` (0 = a->b, 1 = b->a) of topology link `link`. The
  // receiving switch hands it to the HelloHandler instead of forwarding.
  // Must be called from the transmitting switch's shard.
  void send_hello(Simulator& sim, topo::LinkId link, int dir);
  void set_hello_handler(HelloHandler* handler) noexcept {
    hello_handler_ = handler;
  }

  // The traced switch path of flow `flow_id`'s first data packet (empty
  // if tracing is off or nothing was forwarded yet). The final entry is
  // the destination ToR once the packet got there.
  routing::Path traced_path(std::int32_t flow_id) const;

  // Instantaneous queued bytes per directed switch-switch link (same
  // indexing as link_utilization). Sampled by sim::QueueMonitor.
  std::vector<std::int64_t> queue_occupancy() const;

  // --- Checkpoint support (sim/checkpoint.h) ---
  // Registers every event sink the Network owns, in oid order (the same
  // order the constructor and schedule_link_failure assigned them).
  void collect_sinks(SinkRegistry& reg);
  // Serializes / restores all mutable network state: link queues and
  // stats, physical/routed-out link state (tables are rebuilt from it, not
  // serialized), gray RNG streams, flowlet tables, stats stripes, traces.
  // load_state is only valid on a freshly-reconstructed Network.
  void save_state(SnapshotWriter& w, const PacketCodec& codec) const;
  void load_state(SnapshotReader& r, const PacketCodec& codec);
  // The pinned source route a restored in-flight packet points at.
  const routing::Path* route_for(std::int32_t flow_id, bool is_ack) const;
  // Re-allocates a restored in-flight packet's node from the pool its oid
  // owner drains into (only the per-pool in_use skew depends on the shard).
  PacketNode* alloc_restored_node(int pool_shard, const Packet& p) {
    return pools_[static_cast<std::size_t>(pool_shard)]->alloc(p);
  }
  // Auditor accessors: total pool occupancy and a walk over every link.
  std::int64_t pool_nodes_in_use() const {
    std::int64_t n = 0;
    for (const auto& p : pools_) n += p->in_use();
    return n;
  }
  template <typename Fn>
  void for_each_link(Fn&& fn) const {
    for (const Link& l : net_links_) fn(l);
    for (const Link& l : host_up_) fn(l);
    for (const Link& l : host_down_) fn(l);
  }

  // Per-directed-link utilization over [0, elapsed]: bytes transmitted /
  // (rate x elapsed). Index 2l = a->b of topology link l, 2l+1 = b->a.
  // Useful for spotting hash imbalance and transit hot spots.
  std::vector<double> link_utilization(Time elapsed) const;
  // Summary of the above (max = the hottest directed link).
  struct UtilizationStats {
    double mean = 0;
    double max = 0;
    double p99 = 0;
  };
  UtilizationStats utilization_stats(Time elapsed) const;

 private:
  class SwitchDev;
  class HostDev;
  friend class SwitchDev;
  friend class HostDev;

  Link& out_link(NodeId node, topo::LinkId link);
  // slot = the executing shard: selects the packet pool and the stats
  // stripe, so shards never touch each other's counters or free lists.
  void forward_at_switch(Simulator& sim, NodeId node, int slot,
                         PacketNode* packet_node);
  void deliver(Simulator& sim, int slot, const Packet& pkt);
  void rebuild_tables(const routing::LinkSet* dead);
  topo::LinkId link_to_neighbor(NodeId node, NodeId neighbor) const;
  // Per-flow hash key at a switch, with the flowlet id mixed in when
  // flowlet switching is enabled.
  std::uint64_t hash_key(Simulator& sim, NodeId node, const Packet& pkt);

  // Maps the hash onto [0, n) with a multiply-shift instead of a modulo —
  // the per-hop divide was a measurable slice of forwarding cost.
  std::uint32_t pick(std::uint64_t key, std::size_t n) const {
    const std::uint64_t h = splitmix64(key ^ cfg_.ecmp_salt);
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(h) * n) >> 64);
  }

  const Graph& graph_;
  NetworkConfig cfg_;
  // Block partition of switches over shards (shard of switch n); hosts,
  // NICs, and flows follow their ToR. Contiguous blocks keep each shard's
  // links/devices adjacent in the arrays below — the per-shard working set
  // stays cache-local where one global heap walked the whole arrays.
  int num_shards_ = 1;
  std::vector<std::int32_t> switch_shard_;
  std::uint32_t next_oid_ = 1;  // 0 is the simulators' root context
  // Worker pool for parallel table construction; null when both intra_jobs
  // and table_jobs resolve to 1.
  // Nested::kAllow — the benches divide --jobs between sweep and cell.
  std::unique_ptr<util::Runner> table_runner_;
  double table_build_s_ = 0;
  // Forwarding table of the active mode; the other stays null (computing
  // both doubled reconvergence cost for no data-plane benefit).
  std::unique_ptr<routing::EcmpTable> ecmp_;  // only in kEcmp mode
  std::unique_ptr<routing::VrfTable> vrf_;    // only in kShortestUnion mode

  // One pool per shard, declared before the links so they outlive them.
  // Cross-shard packets are released into the receiving shard's free list
  // (see PacketPool::in_use on the counter skew this allows).
  std::vector<std::unique_ptr<PacketPool>> pools_;

  // Devices and links live in contiguous arrays — the forwarding path
  // indexes straight into them with no per-object heap indirection, which
  // keeps the handful of hot Link records packed into few cache lines.
  std::unique_ptr<SwitchDev[]> switches_;
  std::unique_ptr<HostDev[]> hosts_;
  // Switch-to-switch: two directed Links per topology link (index 2l for
  // a->b, 2l+1 for b->a).
  std::vector<Link> net_links_;
  // Host NICs: uplink host->ToR and downlink ToR->host per host.
  std::vector<Link> host_up_;
  std::vector<Link> host_down_;

  std::vector<Endpoint*> sources_;
  std::vector<Endpoint*> sinks_;
  // Pinned routes per flow id (kSourceRouted). reverse is derived.
  struct FlowRoutes {
    routing::Path forward;
    routing::Path reverse;
  };
  std::vector<std::unique_ptr<FlowRoutes>> routes_;
  // Flowlet state per switch. Keyed by flow id in a linear-probing flat
  // table: the per-switch unordered_map lookup was a profiled hot spot,
  // but flow ids are global and monotonically increasing, so a dense
  // per-flow vector per switch would cost O(switches x flows) memory
  // (GBs at paper scale) — each switch stores only the flows that
  // actually traverse it.
  struct FlowletState {
    Time last = 0;
    std::uint32_t id = 0;
  };
  class FlowletTable {
   public:
    // Finds or inserts the state for `flow`. References are invalidated
    // by the next call (the table may grow).
    FlowletState& operator[](std::int32_t flow);

    // Checkpoint support: the slot array round-trips verbatim so probe
    // sequences (and thus flowlet ids) after restore match exactly.
    void save_state(SnapshotWriter& w) const;
    void load_state(SnapshotReader& r);

   private:
    struct Slot {
      std::int32_t flow = -1;  // -1 = empty
      FlowletState state;
    };
    static std::size_t probe_start(std::int32_t flow, std::size_t mask) {
      return static_cast<std::size_t>(
                 splitmix64(static_cast<std::uint64_t>(flow))) &
             mask;
    }
    void grow();

    std::vector<Slot> slots_;  // power-of-two size
    std::size_t size_ = 0;
  };
  std::vector<FlowletTable> flowlets_;
  std::vector<routing::Path> traces_;  // per flow id, when trace_paths
  routing::LinkSet down_links_;
  // Delta-repair bookkeeping: the dead set the installed tables were built
  // against, plus the links whose routed-out state changed since.
  routing::LinkSet installed_dead_;
  std::vector<topo::LinkId> pending_repair_;
  HelloHandler* hello_handler_ = nullptr;
  // Pending failure schedulers (own their EventSink identity).
  class FailureEvent;
  std::vector<std::unique_ptr<FailureEvent>> failure_events_;
  // ttl_drops / no_route_drops / delivered, striped per shard so parallel
  // windows never share a counter cache line; stats() sums the stripes.
  struct alignas(64) ShardStats {
    NetStats s;
  };
  std::vector<ShardStats> shard_stats_;
};

}  // namespace spineless::sim
