// Deterministic intra-cell parallelism: a conservative parallel
// discrete-event engine over a sharded Network, structured as an
// SPDK-style reactor — persistent per-shard pollers multiplexed onto a
// small set of reactor threads, with lock-free SPSC ring handoff instead
// of the old two-barrier lockstep windows.
//
// The Network block-partitions its switches (and their hosts, NICs, and
// flows) into K shards; each shard gets its own Simulator (event heap) and
// packet pool. All per-entity state is touched only by the entity's owning
// shard, and the only events that cross shards are link-propagation
// arrivals, which a transmitting shard schedules at least
//   lookahead = link propagation delay
// into the future. That is the classic conservative-window guarantee:
// once every event below a window start X is executed and every in-flight
// arrival is at or beyond X, all shards can execute [X, X + lookahead)
// concurrently without ever receiving an event below their front.
//
// Reactor structure. Each shard is a Poller — a small non-blocking state
// machine — and R reactor threads (auto: min(K, hardware cores); reactor 0
// is the caller) round-robin their pollers. On a 1-core host R = 1 and the
// shards interleave cooperatively on one thread: the protocol then costs a
// handful of uncontended atomics per window and zero context switches,
// which is what makes --intra_jobs=2 nearly free where the barrier engine
// paid two futex rendezvous per window.
//
// Cross-shard handoff. Each (src, dst) pair owns a lock-free SPSC ring
// (util/spsc_ring.h). A full ring never blocks: the producer parks the
// event in a per-lane overflow vector and flushes it opportunistically.
// At the end of its window each shard pushes one *epoch sentinel* per
// outgoing lane and publishes produced = e (release). A consumer merges
// lane events into its heap only up to its own epoch's sentinel, in fixed
// source order — so the set and order of merged events per window is a
// pure function of the event streams, independent of when rings are
// drained. Ring drains between event batches only move events into a
// consumer-local staging buffer; the heap itself changes only at the
// deterministic merge point.
//
// Window advance. Windows are planned *decentrally*: after merging epoch
// e every shard publishes its post-merge heap minimum (merged = e,
// release) and decides the next window from shared, deterministic inputs:
//   - busy fast path: if its own heap has an event inside the fixed next
//     window [X, X + lookahead) and no global event is due, it steps into
//     that window immediately — no waits beyond the produced handshake,
//     no reads of other shards' minima;
//   - otherwise it waits for all merged >= e, folds the published minima
//     into the exact global minimum, and either mirrors the step window
//     (someone else was busy), jumps the window start to the global
//     minimum (everyone idle — this is what keeps sparse phases, e.g.
//     retransmission timeouts, O(1) windows per event cluster), or
//     rendezvouses for a central plan.
// Every shard evaluates the same rules on the same published values, so
// all pollers trace the identical window sequence with no coordinator.
//
// Globals. Global events (sinks registered kShardGlobal: link failures,
// queue monitors) mutate whole-network state, so they cannot run inside a
// shard. They execute single-threaded in the central plan: the last shard
// to arrive at the rendezvous drains the global inbox, executes due
// globals on the control simulator in exact (t, prio) order (shards run
// strictly below a mid-window global's key first — kRunKey), and
// publishes the next window plus a snapshot of the earliest pending
// global. Mid-window global posts are tagged with the posting shard's
// epoch so every shard folds the identical global set into its decision
// at epoch e regardless of scheduling.
//
// Determinism. Event priorities are (scheduler oid, counter) pairs —
// globally unique and independent of thread interleaving (simulator.h) —
// so each heap pops a total order identical to the serial engine's
// subsequence for that shard, and ring events carry the exact keys the
// serial run would have used. Together with the deterministic merge sets
// and the exact global interleaving, results are byte-identical to the
// serial engine for any intra_jobs and any reactor_threads.
//
// When to use: intra-cell sharding pays on a single large topology
// (fig6's m >= 12 cells) where PR 1's cell-level Runner has no cells left
// to parallelize — i.e. whenever cells < cores. For sweeps with many
// small cells, outer parallelism wins; the benches split --jobs into
// (outer) x (--intra_jobs) accordingly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "util/spsc_ring.h"

namespace spineless::sim {

class ShardedEngine : public ShardRouter {
 public:
  // The network's intra_jobs determines the shard count; its link delay is
  // the lookahead (and must be positive). reactor_threads picks the thread
  // count backing the pollers (0 = auto).
  explicit ShardedEngine(Network& net);
  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Single-threaded front door for setup and observation: schedule flow
  // starts, failures, monitors through this simulator — events route to
  // the owning shard (or the global queue) automatically.
  Simulator& control() noexcept { return control_; }

  // Runs all shards up to `deadline` (inclusive), like
  // Simulator::run_until. May be called repeatedly with growing deadlines.
  void run_until(Time deadline);

  // Total events executed across every shard plus the global events —
  // equals the serial engine's count for the same scenario.
  std::uint64_t events_processed() const;

  int num_shards() const noexcept { return num_shards_; }
  int reactor_threads() const noexcept { return num_reactors_; }
  const Simulator& shard(int s) const { return *pollers_[static_cast<std::size_t>(s)]->sim; }

  // Engine self-metrics, cheap plain counters folded on demand. Only valid
  // between run_until calls (quiescent, like the checkpoint accessors).
  struct Metrics {
    std::uint64_t windows = 0;        // windows executed (epochs advanced)
    std::uint64_t ring_handoffs = 0;  // cross-shard events pushed via rings
    std::uint64_t max_ring_occupancy = 0;  // peak ring fill, any lane
    std::uint64_t spin_waits = 0;     // no-progress reactor passes
    std::uint64_t central_plans = 0;  // rendezvous plans (globals/jumps/stop)
    // Adaptive ring sizing: lanes whose producer hit the overflow vector
    // double their ring at the next quiescent boundary (geometric growth,
    // bounded). ring_capacity reports the largest lane the run settled on.
    std::uint64_t ring_capacity = 0;
    std::uint64_t ring_growths = 0;
  };
  Metrics metrics() const;

  // --- Checkpoint support (sim/checkpoint.h). All of these are only
  // valid between run_until calls: the reactors are parked (run_until's
  // done_count_ acquire-wait ordered their last writes before our reads),
  // every ring, staging buffer, and overflow lane is empty, and every
  // clock sits at the last deadline. ---
  const Simulator& control() const noexcept { return control_; }
  Simulator& shard_mut(int s) { return *pollers_[static_cast<std::size_t>(s)]->sim; }
  Time now() const noexcept { return control_.now(); }
  // Pending global events in key order (the engine's ordered set, which
  // push/pop order reconstructs exactly).
  std::vector<Simulator::Event> pending_globals() const;
  void restore_globals(const std::vector<Simulator::Event>& events);

  // ShardRouter:
  void post(std::int32_t src_shard, std::int32_t dst_shard,
            const RoutedEvent& e) override;
  void post_global(std::int32_t src_shard, const RoutedEvent& e) override;

 private:
  enum class Phase { kRun, kRunKey, kStop };
  // Poller states: the per-shard window protocol, advanced one
  // non-blocking slice per poll() call.
  enum class PState {
    kRun,          // executing the window (budgeted slices)
    kFlush,        // pushing overflow + epoch sentinels into the rings
    kMergeDecide,  // await all produced >= e, merge, publish min, decide
    kAwaitMerged,  // slow path: await all merged >= e, global-min decide
    kAwaitPlan,    // parked at the central rendezvous
    kStopped,      // round over (deadline reached)
  };

  struct KeyLess {
    bool operator()(const Simulator::Event& a,
                    const Simulator::Event& b) const noexcept {
      return a.before(b);  // keys are globally unique -> strict total order
    }
  };

  using Ring = util::SpscRing<Simulator::Event>;

  // Per-shard published protocol state, padded so one shard's handshake
  // stores never false-share with a neighbor's. The plain fields piggyback
  // on the release stores of the epoch counters: min_* is published by
  // merged, and is only overwritten at epoch e+1 after every reader's
  // produced counter passed e+1 — which happens-after their epoch-e reads.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> produced{0};  // windows fully run + flushed
    std::atomic<std::uint64_t> merged{0};    // windows fully merged
    Time min_t = 0;           // post-merge heap minimum at epoch `merged`
    std::uint64_t min_prio = 0;
    bool has_min = false;
  };

  // Consumer-side staging for one incoming lane: ring drains append here
  // at any time; the deterministic merge consumes up to the epoch
  // sentinel. `head` indexes the first unconsumed element.
  struct Stage {
    std::vector<Simulator::Event> events;
    std::size_t head = 0;
  };

  // One shard's poller: the state machine plus its producer/consumer lane
  // state. Owned exclusively by its reactor thread while a round runs.
  struct Poller {
    int s = 0;
    std::unique_ptr<Simulator> sim;

    PState st = PState::kStopped;
    std::uint64_t epoch = 0;  // monotone across rounds (atomics never reset)

    // Current window, adopted from the central plan or computed locally.
    Phase phase = Phase::kStop;
    Time win_deadline = 0;  // kRun: run events with t <= this
    Time key_t = 0;         // kRunKey: run strictly below (key_t, key_prio)
    std::uint64_t key_prio = 0;
    Time lane_floor = 0;    // lower bound every outgoing post must respect
    Time x_next = 0;        // fixed-step start of the next window (= end)
    bool force_slow = false;    // kRunKey windows must re-plan centrally
    bool sentinels_sent = false;
    std::uint64_t plan_seen = 0;  // plan_gen_ already adopted

    // Producer side: per-dst overflow for full rings (index cursor avoids
    // pop-front churn). overflow_pressure counts events parked per lane
    // since the last quiescent boundary — the ring-growth signal.
    std::vector<std::vector<Simulator::Event>> overflow;
    std::vector<std::size_t> overflow_head;
    std::vector<std::uint64_t> overflow_pressure;

    // Consumer side: per-src staging.
    std::vector<Stage> in;

    // Metrics (plain: read only while quiescent).
    std::uint64_t windows = 0;
    std::uint64_t handoffs = 0;
  };

  // Central plan output, published by plan() under plan_gen_ (release).
  struct Plan {
    Phase phase = Phase::kStop;
    Time win_deadline = 0;
    Time key_t = 0;
    std::uint64_t key_prio = 0;
    Time lane_floor = 0;
    Time x_next = 0;
    // Snapshot of the earliest pending global after planning; combined
    // with epoch-tagged inbox posts this is every shard's deterministic
    // view of "the next global" between central plans.
    bool g_valid = false;
    Time g_t = 0;
    std::uint64_t g_prio = 0;
  };

  struct GlobalPost {
    Simulator::Event ev;
    std::uint64_t epoch;  // poster's window epoch at post time
  };

  // The next-global key visible to a shard deciding at `epoch`.
  struct GKey {
    bool valid = false;
    Time t = 0;
    std::uint64_t prio = 0;
  };

  void worker_main(int reactor);
  void reactor_main(int reactor);
  // Quiescent boundary only (every ring empty): doubles any lane whose
  // producer overflowed since the last call, up to the growth bound.
  void grow_pressured_rings();
  bool poll(Poller& p);  // one non-blocking slice; true if progress
  void lane_push(Poller& p, int dst, const Simulator::Event& e);
  bool flush_overflow(Poller& p);  // true when every lane drained
  std::size_t drain_rings(Poller& p, std::size_t max);  // rings -> staging
  void merge_epoch(Poller& p);  // staging -> heap up to epoch sentinel
  void publish_min(Poller& p);
  GKey effective_global(std::uint64_t epoch);
  // Decision steps; each either installs the next window on p (st = kRun)
  // or advances p to the next protocol state.
  void decide_fast(Poller& p);
  void decide_slow(Poller& p);
  void arrive_central(Poller& p);
  void adopt_plan(Poller& p);
  void adopt_window(Poller& p, Phase phase, Time win_deadline, Time key_t,
                    std::uint64_t key_prio, Time lane_floor, Time x_next,
                    bool force_slow);
  // Single-threaded: executes due globals, publishes the next window (or
  // kStop) via plan_gen_. Every heap is quiescent and fully merged here.
  void plan();

  Ring& ring(int src, int dst) {
    return *rings_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(num_shards_) +
                   static_cast<std::size_t>(dst)];
  }
  static bool is_sentinel(const Simulator::Event& e) noexcept {
    return e.sink == nullptr;
  }

  Network& net_;
  const int num_shards_;
  const int num_reactors_;
  const Time lookahead_;

  std::vector<std::unique_ptr<Poller>> pollers_;
  Simulator control_;
  std::vector<std::unique_ptr<Ring>> rings_;  // rings_[src * K + dst]
  std::vector<Slot> slots_;

  // Pending global events in key order, plus a mutex-guarded inbox for the
  // (rare) case of a shard posting a global mid-window. inbox_count_ is
  // the lock-free emptiness fast path; its release store under the mutex
  // pairs with the poster's produced handshake so a post tagged epoch e is
  // visible to every shard deciding at e.
  std::set<Simulator::Event, KeyLess> globals_;
  std::mutex global_mu_;
  std::vector<GlobalPost> global_inbox_;
  std::atomic<std::uint64_t> inbox_count_{0};

  Plan plan_;
  std::atomic<std::uint64_t> plan_gen_{0};
  std::atomic<int> central_arrived_{0};
  Time deadline_ = 0;  // current run_until target
  std::uint64_t central_plans_ = 0;
  std::uint64_t ring_growths_ = 0;
  // Peak occupancies of rings retired by growth, so metrics() keeps the
  // all-time maximum across swaps.
  std::uint64_t retired_ring_occupancy_ = 0;

  // Per-reactor spin-wait counters (padded; summed while quiescent).
  struct alignas(64) ReactorStats {
    std::uint64_t spins = 0;
  };
  std::vector<ReactorStats> reactor_stats_;

  // Worker threads park here between run_until calls; done_count_ is their
  // end-of-round acknowledgment, awaited by run_until before it returns so
  // the next round's planning cannot race a worker still leaving this one.
  std::atomic<std::uint64_t> run_gen_{0};
  std::atomic<int> done_count_{0};
  std::atomic<bool> quit_{false};
  std::vector<std::thread> threads_;
};

}  // namespace spineless::sim
