// Deterministic intra-cell parallelism: a conservative parallel
// discrete-event engine over a sharded Network.
//
// The Network block-partitions its switches (and their hosts, NICs, and
// flows) into K shards; each shard gets its own Simulator (event heap) and
// packet pool. All per-entity state is touched only by the entity's owning
// shard, and the only events that cross shards are link-propagation
// arrivals, which a transmitting shard schedules at least
//   lookahead = link propagation delay
// into the future. That is the classic conservative-window guarantee: if W
// is the earliest pending event time across all shards, every shard can
// execute its events in [W, W + lookahead) without ever receiving an
// event below its execution front — so the engine advances all shards
// through barrier-synchronized windows of that width.
//
// Per window: (1) every shard runs its heap up to the window end,
// buffering cross-shard arrivals into per-(src,dst) lanes; (2) barrier;
// (3) every shard merges its incoming lanes into its heap; (4) barrier,
// whose last arriver plans the next window. Because event priorities are
// (scheduler oid, counter) pairs — globally unique and independent of
// thread interleaving (see simulator.h) — each heap pops in a total order
// identical to the serial engine's subsequence for that shard, and merged
// lane events carry the exact keys the serial run would have used. The
// result is byte-identical to the serial engine for any intra_jobs.
//
// Global events (sinks registered kShardGlobal: link failures, queue
// monitors) mutate whole-network state, so they cannot run inside a shard.
// The planner interleaves them exactly: when the next global's key
// (t, prio) falls inside the upcoming window, shards run only *strictly
// below* that key (run_until_key), then the planner executes the global
// single-threaded on the control simulator and re-plans.
//
// When to use: intra-cell sharding pays on a single large topology
// (fig6's m >= 12 cells) where PR 1's cell-level Runner has no cells left
// to parallelize — i.e. whenever cells < cores. For sweeps with many
// small cells, outer parallelism has no barrier cost and wins; the
// benches split --jobs into (outer) x (--intra_jobs) accordingly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"

namespace spineless::sim {

class ShardedEngine : public ShardRouter {
 public:
  // The network's intra_jobs determines the shard count; its link delay is
  // the lookahead (and must be positive).
  explicit ShardedEngine(Network& net);
  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // Single-threaded front door for setup and observation: schedule flow
  // starts, failures, monitors through this simulator — events route to
  // the owning shard (or the global queue) automatically.
  Simulator& control() noexcept { return control_; }

  // Runs all shards up to `deadline` (inclusive), like
  // Simulator::run_until. May be called repeatedly with growing deadlines.
  void run_until(Time deadline);

  // Total events executed across every shard plus the global events —
  // equals the serial engine's count for the same scenario.
  std::uint64_t events_processed() const;

  int num_shards() const noexcept { return num_shards_; }
  const Simulator& shard(int s) const { return *sims_[static_cast<std::size_t>(s)]; }

  // --- Checkpoint support (sim/checkpoint.h). All of these are only
  // valid between run_until calls: the workers are parked (run_until's
  // done_count_ acquire-wait ordered their last writes before our reads),
  // every lane is empty, and every clock sits at the last deadline. ---
  const Simulator& control() const noexcept { return control_; }
  Simulator& shard_mut(int s) { return *sims_[static_cast<std::size_t>(s)]; }
  Time now() const noexcept { return control_.now(); }
  // Pending global events in key order (the engine's ordered set, which
  // push/pop order reconstructs exactly).
  std::vector<Simulator::Event> pending_globals() const;
  void restore_globals(const std::vector<Simulator::Event>& events);

  // ShardRouter:
  void post(std::int32_t src_shard, std::int32_t dst_shard,
            const RoutedEvent& e) override;
  void post_global(std::int32_t src_shard, const RoutedEvent& e) override;

 private:
  enum class Phase { kRun, kRunKey, kStop };

  // Sense-reversing barrier whose last arriver runs a completion step
  // before releasing the others. Spins briefly (windows are microseconds
  // of simulated work), then parks in atomic wait so oversubscribed
  // machines still make progress.
  class Barrier {
   public:
    explicit Barrier(int n) : n_(n) {}
    template <typename Fn>
    void arrive_and_wait(Fn&& completion) {
      const std::uint64_t gen = gen_.load(std::memory_order_acquire);
      if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
        completion();
        arrived_.store(0, std::memory_order_relaxed);
        gen_.store(gen + 1, std::memory_order_release);
        gen_.notify_all();
        return;
      }
      for (int spin = 0; spin < 4096; ++spin) {
        if (gen_.load(std::memory_order_acquire) != gen) return;
      }
      while (gen_.load(std::memory_order_acquire) == gen) gen_.wait(gen);
    }

   private:
    const int n_;
    std::atomic<int> arrived_{0};
    std::atomic<std::uint64_t> gen_{0};
  };

  struct KeyLess {
    bool operator()(const Simulator::Event& a,
                    const Simulator::Event& b) const noexcept {
      return a.before(b);  // keys are globally unique -> strict total order
    }
  };

  // One cross-shard lane, padded so the writing shard's push_backs never
  // false-share with neighbors.
  struct alignas(64) Lane {
    std::vector<Simulator::Event> events;
  };

  void worker_main(int shard);
  // One run_until(deadline_) protocol round for shard s; returns when the
  // planner has declared kStop.
  void participant(int s);
  // Runs in the second barrier's completion slot, single-threaded while
  // every other shard waits: executes due globals, then picks the next
  // window (or stops). All heaps are quiescent here, so it may touch them.
  void plan();
  void merge_lanes_into(int dst);

  Network& net_;
  const int num_shards_;
  const Time lookahead_;

  std::vector<std::unique_ptr<Simulator>> sims_;
  Simulator control_;
  std::vector<Lane> lanes_;  // lanes_[src * K + dst]

  // Pending global events in key order, plus a mutex-guarded inbox for the
  // (rare) case of a shard posting a global mid-window.
  std::set<Simulator::Event, KeyLess> globals_;
  std::mutex global_mu_;
  std::vector<Simulator::Event> global_inbox_;

  Barrier barrier_;
  // Phase state, written only by plan() and read by all shards after the
  // releasing barrier (which orders the accesses).
  Phase phase_ = Phase::kStop;
  Time win_deadline_ = 0;   // kRun: run events with t <= this
  Time key_t_ = 0;          // kRunKey: run strictly below (key_t_, key_prio_)
  std::uint64_t key_prio_ = 0;
  Time deadline_ = 0;       // current run_until target
  Time lane_floor_ = 0;     // lower bound every lane post must respect

  // Worker threads park here between run_until calls; done_count_ is their
  // end-of-round acknowledgment, awaited by run_until before it returns so
  // the next round's planning cannot race a worker still leaving this one.
  std::atomic<std::uint64_t> run_gen_{0};
  std::atomic<int> done_count_{0};
  std::atomic<bool> quit_{false};
  std::vector<std::thread> threads_;
};

}  // namespace spineless::sim
