// Deterministic checkpoint/restore and the runtime invariant auditor.
//
// Design: a snapshot does NOT serialize object graphs. The restore path
// first *reconstructs* the experiment deterministically (same topology,
// seed, and construction order — hence the same scheduler oids), then
// clears the freshly-built heaps (pre-run they hold only setup events with
// no owned payloads) and loads: every sink's live priority counter, every
// component's mutable state, and the raw event arrays. Event sinks are
// named by oid through a SinkRegistry built by walking the experiment in
// construction order; packet-carrying events (Device arrivals) re-allocate
// their PacketNode from the receiving shard's pool. Because heap arrays are
// restored verbatim and priority counters resume mid-stream, a restored
// run pops, executes, and schedules the exact event sequence an
// uninterrupted run would — byte-identical results for any intra_jobs.
//
// Checkpoints are only taken at quiescent boundaries: between run_until
// calls on the serial engine, or between ShardedEngine::run_until calls,
// where every shard heap is parked, every handoff lane is empty, and
// pending globals sit in the engine's ordered set.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/packet.h"
#include "sim/simulator.h"
#include "sim/snapshot.h"

namespace spineless::sim {

class Network;
class ShardedEngine;

// How an event's ctx word is serialized: most sinks carry plain integers
// (timer ids, link indices, action indices); Device sinks carry an owned
// PacketNode*, whose Packet value must be serialized and re-allocated.
enum class CtxKind : std::uint8_t { kPlain = 0, kPacketNode = 1 };

// oid -> sink mapping, built by walking the experiment's components in
// construction order. The walk order also defines the order per-sink
// priority counters are serialized in, so it must be identical between the
// saving run and the restoring run (it is: both are the deterministic
// construction order).
class SinkRegistry {
 public:
  struct Entry {
    EventSink* sink = nullptr;
    CtxKind kind = CtxKind::kPlain;
    int pool_shard = 0;  // kPacketNode: which pool re-allocations draw from
  };

  void add(EventSink* sink, CtxKind kind, int pool_shard = 0);
  std::size_t size() const noexcept { return order_.size(); }
  const Entry& at(std::size_t i) const { return order_[i]; }
  // Lookup by oid; CHECK-fails on an unregistered oid (an experiment
  // component the session was never told about cannot be checkpointed).
  const Entry& by_oid(std::uint32_t oid) const;
  void clear_and_reserve(std::size_t n);

 private:
  std::vector<Entry> order_;
  // Lookup-only index (spineless-unordered-iteration triage): every
  // ordered walk goes over order_, which is construction order; by_oid_ is
  // only probed point-wise via find(), so its hash order can never reach
  // event order or snapshot bytes. Iterating it would trip the lint rule.
  std::unordered_map<std::uint32_t, std::size_t> by_oid_;
};

// Serializes packets, re-resolving the source-route pointer (which is an
// address into the owning Network) by flow id on read.
class PacketCodec {
 public:
  explicit PacketCodec(Network& net) : net_(net) {}
  void write(SnapshotWriter& w, const Packet& p) const;
  Packet read(SnapshotReader& r) const;

 private:
  Network& net_;
};

// Default section tag for Checkpointable parts ("PART"), and the hybrid
// co-simulation loop's own tag ("HYBR") — a distinct tag so a snapshot
// taken mid-hybrid-run is structurally self-describing and cannot be
// restored into a pure-packet experiment by accident.
inline constexpr std::uint32_t kSectionPartTag = 0x50415254;   // "PART"
inline constexpr std::uint32_t kSectionHybrid = 0x48594252;    // "HYBR"

// Versioned section payloads. A section that expects to evolve (the hybrid
// loop's HYBR state grew fault-tolerance fields in PR 8) leads its payload
// with a single u64 word (tag << 32 | version) so version skew fails with a
// section-named message instead of a checksum-adjacent misalignment:
// write_section_version as the first word of save_state, expect_section_
// version as the first read of load_state. A payload whose leading word
// does not carry the tag in its high half predates versioning entirely —
// reported as such, again by section name. The leading word is the
// section's field 0, so snapshot_patch_u64(path, tag, 0, ...) can forge a
// future version for forward-compat negative tests.
void write_section_version(SnapshotWriter& w, std::uint32_t tag,
                           std::uint32_t version);
void expect_section_version(SnapshotReader& r, std::uint32_t tag,
                            std::uint32_t version);
// "HYBR" from 0x48594252 — for error messages.
std::string section_tag_name(std::uint32_t tag);

// Anything beyond the Network that owns mutable simulation state and/or
// event sinks: FlowDriver, FaultInjector, monitors. Implementations must
// save/load in a fixed field order and register their sinks in
// construction order.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void collect_sinks(SinkRegistry& reg) = 0;
  virtual void save_state(SnapshotWriter& w) const = 0;
  virtual void load_state(SnapshotReader& r) = 0;
  // The snapshot section this part's state is framed in. Parts that carry
  // non-packet simulation state of their own (the hybrid loop's fluid
  // flows) override this so the on-disk format names them explicitly.
  virtual std::uint32_t section_tag() const { return kSectionPartTag; }
};

// One invariant violation found by the auditor, e.g.
//   invariant = "packet_conservation", detail = "pool in_use 12 != ...".
struct AuditViolation {
  std::string invariant;
  std::string detail;
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  bool ok() const noexcept { return violations.empty(); }
  std::string to_string() const;
};

// Experiment-loop knobs threaded through core::FctConfig: where and how
// often to checkpoint, whether to resume, whether to audit, and the
// cooperative cancellation / progress hooks the self-healing runner uses.
struct CheckpointSpec {
  std::string path;       // empty = no checkpoint file
  Time interval = 0;      // sim-time between checkpoints; 0 = one segment
  bool resume = false;    // restore from `path` if it exists
  bool audit = false;     // run the invariant auditor at each boundary
  std::function<bool()> cancel;  // polled at boundaries; true = stop early
  std::function<void(std::uint64_t events)> progress;  // watchdog heartbeat

  bool enabled() const noexcept {
    return !path.empty() || audit || interval > 0 ||
           static_cast<bool>(cancel) || static_cast<bool>(progress);
  }
};

// Orchestrates save/restore/audit for one experiment: the Network plus any
// registered Checkpointable parts, against a serial Simulator or a
// ShardedEngine. config_hash must encode everything that determines the
// reconstructed experiment (seed, topology, routing mode, intra_jobs...);
// restore refuses a snapshot whose hash differs.
class CheckpointSession {
 public:
  CheckpointSession(Network& net, std::uint64_t config_hash);

  // Registration order is serialization order; keep it construction order.
  void add(Checkpointable* part) { parts_.push_back(part); }

  void save(const std::string& path, const Simulator& sim);
  void save(const std::string& path, const ShardedEngine& eng);

  // False: no snapshot at `path` (start from scratch). Throws on a corrupt
  // or configuration-mismatched snapshot, and when the restored state
  // violates the snapshot's own summary invariants (see audit()).
  bool restore(const std::string& path, Simulator& sim);
  bool restore(const std::string& path, ShardedEngine& eng);

  // Request-granularity checkpoint reuse (the serving layer): seal a
  // snapshot to resident bytes without touching disk, and restore from
  // bytes held in memory. Identical format and invariant cross-checks as
  // the file paths above — save(path) is exactly save_bytes + an atomic
  // write, so a warm checkpoint kept in RAM and one reloaded from disk
  // after a crash restore byte-identically.
  std::string save_bytes(const Simulator& sim);
  std::string save_bytes(const ShardedEngine& eng);
  void restore_bytes(const std::string& bytes, Simulator& sim);
  void restore_bytes(const std::string& bytes, ShardedEngine& eng);

  // Live invariant checks at a quiescent boundary: packet conservation
  // (pool in_use == queued nodes + in-flight packet events), monotonic
  // event time (no pending event before now), non-negative / consistent
  // queue occupancy, and TTL bounds on every live packet.
  AuditReport audit(const Simulator& sim);
  AuditReport audit(const ShardedEngine& eng);

 private:
  struct EngineView;  // uniform serial/sharded access, see checkpoint.cc

  void build_registry();
  std::string save_view_bytes(const EngineView& view);
  void save_view(const std::string& path, const EngineView& view);
  void restore_view_bytes(std::string bytes, const EngineView& view);
  bool restore_view(const std::string& path, const EngineView& view);
  AuditReport audit_view(const EngineView& view);
  void write_events(SnapshotWriter& w, const PacketCodec& codec,
                    const std::vector<Simulator::Event>& events) const;
  std::vector<Simulator::Event> read_events(SnapshotReader& r,
                                            const PacketCodec& codec) const;

  Network& net_;
  std::uint64_t config_hash_;
  std::vector<Checkpointable*> parts_;
  SinkRegistry registry_;
};

// Summary-section field indices, shared with the auditor's negative tests
// (snapshot_patch_u64 targets these by index).
inline constexpr std::uint32_t kSectionSummary = 0x53554d4d;  // "SUMM"
enum SummaryField : std::size_t {
  kSummaryNow = 0,
  kSummaryProcessed = 1,
  kSummaryPacketEvents = 2,
  kSummaryQueuedNodes = 3,
  kSummaryQueuedBytes = 4,
  kSummaryMaxHops = 5,
};

}  // namespace spineless::sim
