// Periodic sampling of queue occupancy during a simulation — the htsim-
// style monitoring used to study queue dynamics (and to show DCTCP holding
// queues at the marking threshold while Reno saws between full and empty).
//
// A QueueMonitor schedules itself every `interval` and records, per sample,
// the total and maximum switch-switch queue occupancy. Samples live in
// memory; summarize with the Summary accessors or dump as CSV.
#pragma once

#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace spineless::sim {

class QueueMonitor : public EventSink, public Checkpointable {
 public:
  struct Sample {
    Time t = 0;
    std::int64_t total_bytes = 0;  // across all switch-switch queues
    std::int64_t max_bytes = 0;    // hottest single queue
  };

  QueueMonitor(Network& net, Time interval)
      : net_(net), interval_(interval) {
    SPINELESS_CHECK(interval > 0);
    // A sample reads every queue in the network, so in sharded runs the
    // monitor must fire barrier-synchronized between shard windows.
    net.register_global_sink(this);
  }

  // Starts sampling at `from` and re-arms every interval until `until`.
  void start(Simulator& sim, Time from, Time until);

  void on_event(Simulator& sim, std::uint64_t ctx) override;

  // Checkpointable.
  void collect_sinks(SinkRegistry& reg) override {
    reg.add(this, CtxKind::kPlain);
  }
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  const std::vector<Sample>& samples() const noexcept { return samples_; }
  // Distribution of the per-sample hottest queue, in packets.
  Summary max_queue_pkts() const;
  // Time-average of total queued bytes.
  double mean_total_bytes() const;

  // "t_ps,total_bytes,max_bytes" per line.
  std::string to_csv() const;

 private:
  Network& net_;
  Time interval_;
  Time until_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace spineless::sim
