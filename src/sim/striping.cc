#include "sim/striping.h"

#include <algorithm>

namespace spineless::sim {

int StripedFlowDriver::add_flow(Simulator& sim, topo::HostId src,
                                topo::HostId dst, std::int64_t bytes,
                                Time start, const routing::PathSet& paths,
                                int subflows) {
  SPINELESS_CHECK(!paths.empty());
  SPINELESS_CHECK(subflows >= 1);
  SPINELESS_CHECK(bytes > 0);
  const auto j = std::min<std::size_t>(static_cast<std::size_t>(subflows),
                                       paths.size());
  Group group;
  group.start = start;
  const std::int64_t base = bytes / static_cast<std::int64_t>(j);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < j; ++i) {
    std::int64_t share = i + 1 == j ? bytes - assigned : base;
    share = std::max<std::int64_t>(share, 1);
    assigned += share;
    const std::int32_t id = driver_.add_flow(sim, src, dst, share, start);
    net_.set_flow_routes(id, paths[i]);
    group.members.push_back(static_cast<std::size_t>(id));
  }
  groups_.push_back(std::move(group));
  return static_cast<int>(groups_.size()) - 1;
}

std::size_t StripedFlowDriver::completed_flows() const {
  std::size_t done = 0;
  for (const Group& g : groups_) {
    done += std::all_of(g.members.begin(), g.members.end(),
                        [this](std::size_t m) {
                          return driver_.flow(m).record().completed();
                        });
  }
  return done;
}

Summary StripedFlowDriver::fct_ms() const {
  Summary s;
  for (const Group& g : groups_) {
    Time last = -1;
    bool all = true;
    for (std::size_t m : g.members) {
      const auto& rec = driver_.flow(m).record();
      if (!rec.completed()) {
        all = false;
        break;
      }
      last = std::max(last, rec.finish);
    }
    if (all) s.add(units::to_millis(last - g.start));
  }
  return s;
}

}  // namespace spineless::sim
