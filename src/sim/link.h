// A unidirectional link: drop-tail byte-bounded output queue, store-and-
// forward serialization at the line rate, then fixed propagation delay to
// the receiving device.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "sim/packet.h"
#include "sim/simulator.h"

namespace spineless::sim {

// Anything that can accept a packet off a link.
class Device {
 public:
  virtual ~Device() = default;
  virtual void receive(Simulator& sim, Packet pkt) = 0;
};

class Link : public EventSink {
 public:
  struct Stats {
    std::int64_t packets_tx = 0;
    std::int64_t bytes_tx = 0;
    std::int64_t drops = 0;
    std::int64_t ecn_marks = 0;
    std::int64_t max_queue_bytes = 0;
  };

  // ecn_threshold_bytes > 0 enables ECN: packets enqueued while the queue
  // holds at least that many bytes get the congestion-experienced mark
  // (DCTCP-style instantaneous-queue marking).
  Link(std::int64_t rate_bps, Time propagation_delay,
       std::int64_t queue_capacity_bytes, Device* peer,
       std::int64_t ecn_threshold_bytes = 0)
      : rate_bps_(rate_bps),
        prop_delay_(propagation_delay),
        queue_capacity_(queue_capacity_bytes),
        ecn_threshold_(ecn_threshold_bytes),
        peer_(peer) {
    SPINELESS_CHECK(rate_bps > 0 && queue_capacity_bytes > 0);
    SPINELESS_CHECK(peer != nullptr);
  }

  // Drop-tail enqueue; starts the transmitter if idle. Packets offered to
  // a downed link are dropped (counted in stats) — the data-plane blackhole
  // between a physical failure and routing reconvergence.
  void enqueue(Simulator& sim, const Packet& pkt);

  void set_down(bool down) noexcept { down_ = down; }
  bool is_down() const noexcept { return down_; }

  const Stats& stats() const noexcept { return stats_; }
  std::int64_t queued_bytes() const noexcept { return queued_bytes_; }

  // EventSink: ctx 0 = serialization of head packet finished,
  //            ctx 1 = packet arrived at peer after propagation.
  void on_event(Simulator& sim, std::uint64_t ctx) override;

 private:
  void start_tx(Simulator& sim);

  std::int64_t rate_bps_;
  Time prop_delay_;
  std::int64_t queue_capacity_;
  std::int64_t ecn_threshold_ = 0;
  Device* peer_;

  std::deque<Packet> queue_;       // awaiting serialization (head = in tx)
  std::deque<Packet> in_flight_;   // serialized, propagating (FIFO arrival)
  std::int64_t queued_bytes_ = 0;
  bool busy_ = false;
  bool down_ = false;
  Stats stats_;
};

}  // namespace spineless::sim
