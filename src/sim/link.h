// A unidirectional link: drop-tail byte-bounded output queue, store-and-
// forward serialization at the line rate, then fixed propagation delay to
// the receiving device.
//
// Packets live in PacketNodes drawn from a shared PacketPool: the output
// queue is an intrusive FIFO of nodes, and a packet in flight travels
// through the event queue as its node pointer (ctx), so the data path
// performs no heap allocation and no staging copies once the pool is warm.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/packet.h"
#include "sim/packet_pool.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace spineless::sim {

class PacketCodec;
class SnapshotReader;
class SnapshotWriter;

// Anything that can accept a packet off a link. The device takes ownership
// of the node: it must either re-enqueue it on another Link or release it
// back to the pool — this is what lets a packet cross the whole fabric
// without ever being copied.
//
// A Device is itself an EventSink: propagation-delay arrivals are
// scheduled directly on the receiving device (ctx = the PacketNode*), so
// in a sharded run the arrival executes in the device's shard — the only
// cross-shard events are exactly these link arrivals, which the
// propagation delay pushes at least one lookahead into the future.
class Device : public EventSink {
 public:
  virtual void receive(Simulator& sim, PacketNode* node) = 0;
  void on_event(Simulator& sim, std::uint64_t ctx) final {
    receive(sim, reinterpret_cast<PacketNode*>(ctx));
  }
};

class Link : public EventSink {
 public:
  struct Stats {
    std::int64_t packets_tx = 0;
    std::int64_t bytes_tx = 0;
    std::int64_t drops = 0;
    std::int64_t ecn_marks = 0;
    std::int64_t max_queue_bytes = 0;
    // Fault-layer accounting (data/ACK packets only; control hellos are
    // not counted). down_drops and gray_drops are also included in
    // `drops`, preserving its meaning of "every packet this link ate".
    std::int64_t down_drops = 0;     // blackholed while physically down
    std::int64_t gray_drops = 0;     // silently dropped by a gray fault
    std::int64_t corrupt_marks = 0;  // corrupted in flight (discarded at
                                     // the receiver's checksum)
  };

  // ecn_threshold_bytes > 0 enables ECN: packets enqueued while the queue
  // holds at least that many bytes get the congestion-experienced mark
  // (DCTCP-style instantaneous-queue marking). The pool outlives the link
  // and is typically shared by every link of a Network.
  Link(std::int64_t rate_bps, Time propagation_delay,
       std::int64_t queue_capacity_bytes, Device* peer, PacketPool* pool,
       std::int64_t ecn_threshold_bytes = 0)
      : rate_bps_(rate_bps),
        prop_delay_(propagation_delay),
        queue_capacity_(queue_capacity_bytes),
        ecn_threshold_(ecn_threshold_bytes),
        peer_(peer),
        pool_(pool) {
    SPINELESS_CHECK(rate_bps > 0 && queue_capacity_bytes > 0);
    SPINELESS_CHECK(peer != nullptr);
    SPINELESS_CHECK(pool != nullptr);
    base_rate_bps_ = rate_bps;
  }

  // Drop-tail enqueue; starts the transmitter if idle. Packets offered to
  // a downed link are dropped (counted in stats) — the data-plane blackhole
  // between a physical failure and routing reconvergence.
  void enqueue(Simulator& sim, const Packet& pkt);
  // Zero-copy variant: takes ownership of a node already drawn from the
  // pool (the forwarding path hands nodes link to link). Dropped nodes are
  // released back to the pool.
  void enqueue_node(Simulator& sim, PacketNode* node);

  void set_down(bool down) noexcept { down_ = down; }
  bool is_down() const noexcept { return down_; }

  // Gray failure: each enqueued packet is independently dropped with
  // probability drop_prob or marked corrupted with probability
  // corrupt_prob (the receiver's checksum discards it on delivery, so the
  // loss is visible only end-to-end). The per-link RNG stream makes the
  // fault replayable: a link's packets enqueue in serial-identical order
  // under the sharded engine, so the draws are byte-identical too.
  void set_gray(double drop_prob, double corrupt_prob, std::uint64_t seed);
  void clear_gray() noexcept { gray_.reset(); }
  bool is_gray() const noexcept { return gray_ != nullptr; }

  // Port degradation: scales the serialization rate by `factor` in
  // (0, 1]; 1 restores the configured rate. Takes effect from the next
  // packet to start transmitting.
  void set_rate_factor(double factor);

  const Stats& stats() const noexcept { return stats_; }
  std::int64_t queued_bytes() const noexcept { return queued_bytes_; }

  // EventSink: serialization of the head packet finished (arrivals are
  // events on the peer Device, not on the Link).
  void on_event(Simulator& sim, std::uint64_t ctx) override;

  // --- Checkpoint support (sim/checkpoint.h) ---
  void save_state(SnapshotWriter& w, const PacketCodec& codec) const;
  // Only valid on a freshly-constructed link (empty queue): queued packets
  // re-allocate from this link's own pool.
  void load_state(SnapshotReader& r, const PacketCodec& codec);

  // Auditor: recounts the FIFO from the nodes themselves so the cached
  // aggregates can be cross-checked.
  struct QueueAudit {
    std::size_t nodes = 0;
    std::int64_t bytes = 0;       // recomputed sum of queued sizes
    std::uint8_t max_hops = 0;    // worst TTL among queued packets
    bool bytes_consistent = true; // recomputed == queued_bytes_ >= 0
    bool busy_consistent = true;  // busy_ iff a head packet exists
  };
  QueueAudit audit_queue() const;

 private:
  struct GrayState {
    double drop_prob = 0;
    double corrupt_prob = 0;
    Rng rng;
  };

  void start_tx(Simulator& sim);

  std::int64_t rate_bps_;
  Time prop_delay_;
  std::int64_t queue_capacity_;
  std::int64_t ecn_threshold_ = 0;
  Device* peer_;
  PacketPool* pool_;

  // Serialization-time memo: a direction carries almost exclusively one
  // packet size (data one way, ACKs the other), so this caches the 128-bit
  // division in units::serialization_time away from the per-packet path.
  std::int64_t memo_size_ = -1;
  Time memo_time_ = 0;

  // Intrusive FIFO awaiting serialization (head = in tx).
  PacketNode* head_ = nullptr;
  PacketNode* tail_ = nullptr;
  std::int64_t queued_bytes_ = 0;
  bool busy_ = false;
  bool down_ = false;
  std::int64_t base_rate_bps_ = 0;  // configured rate; rate_bps_ may be
                                    // degraded below it (set_rate_factor)
  std::unique_ptr<GrayState> gray_;
  Stats stats_;
};

}  // namespace spineless::sim
