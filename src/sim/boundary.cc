#include "sim/boundary.h"

#include <algorithm>

#include "util/rng.h"

namespace spineless::sim {

BoundarySource::BoundarySource(Network& net, std::int32_t flow_id,
                               topo::HostId src, topo::HostId dst,
                               Endpoint* sink, std::uint64_t phase_key)
    : net_(net),
      flow_id_(flow_id),
      src_(src),
      dst_(dst),
      dst_tor_(net.graph().tor_of_host(dst)),
      phase_key_(phase_key) {
  SPINELESS_CHECK(src != dst);
  net_.register_flow(flow_id, this, sink);
  set_event_identity(net.next_oid(), net.shard_of_host(src));
}

void BoundarySource::retarget(topo::HostId src, topo::HostId dst,
                              std::uint64_t phase_key) {
  SPINELESS_CHECK(src != dst);
  src_ = src;
  dst_ = dst;
  dst_tor_ = net_.graph().tor_of_host(dst);
  phase_key_ = phase_key;
  // Move to the new src host's shard WITHOUT resetting the priority
  // counter: set_event_identity zeroes it, and a reset would re-issue
  // (oid, counter) keys that stale pending fires may still hold.
  const std::uint64_t prio = prio_state();
  set_event_identity(event_oid(), net_.shard_of_host(src_));
  restore_prio_state(prio);
  ++epoch_;
  rate_bps_ = 0;
  remaining_ = 0;
}

void BoundarySource::program(Simulator& sim, std::int64_t rate_bps,
                             std::int64_t remaining_bytes, Time not_before) {
  ++epoch_;
  rate_bps_ = rate_bps;
  remaining_ = remaining_bytes;
  if (rate_bps_ <= 0 || remaining_ <= 0) return;
  interval_ = units::serialization_time(kDataPacketBytes, rate_bps_);
  // First-fire phase in [0, interval): splitmix64 of the (seed, boundary
  // link, flow) key mixed with the epoch, so restarts of the same flow in
  // later windows do not all fire at the window edge.
  const Time phase = static_cast<Time>(
      splitmix64(phase_key_ + epoch_) % static_cast<std::uint64_t>(interval_));
  const Time base = not_before > sim.now() ? not_before : sim.now();
  sim.schedule_at(base + phase, this, epoch_);
}

void BoundarySource::on_event(Simulator& sim, std::uint64_t ctx) {
  if (ctx != epoch_) return;  // stale fire from an earlier program
  if (remaining_ <= 0) return;
  transmit(sim);
  remaining_ -= std::min<std::int64_t>(kMss, remaining_);
  if (remaining_ > 0) sim.schedule_after(interval_, this, epoch_);
}

void BoundarySource::transmit(Simulator& sim) {
  Packet pkt;
  pkt.src_host = src_;
  pkt.dst_host = dst_;
  pkt.dst_tor = dst_tor_;
  pkt.flow_id = flow_id_;
  pkt.seq = seq_++;
  pkt.size_bytes = kDataPacketBytes;
  pkt.is_ack = false;
  pkt.ts = sim.now();
  ++packets_sent_;
  net_.inject_from_host(sim, pkt);
}

void BoundarySource::save_state(SnapshotWriter& w) const {
  // Endpoints and phase key are snapshot state since a boundary-fault
  // retarget() can have moved them off their construction-time values.
  w.i64(static_cast<std::int64_t>(src_));
  w.i64(static_cast<std::int64_t>(dst_));
  w.u64(phase_key_);
  w.u64(epoch_);
  w.i64(rate_bps_);
  w.i64(remaining_);
  w.i64(interval_);
  w.i64(seq_);
  w.i64(packets_sent_);
}

void BoundarySource::load_state(SnapshotReader& r) {
  src_ = static_cast<topo::HostId>(r.i64());
  dst_ = static_cast<topo::HostId>(r.i64());
  dst_tor_ = net_.graph().tor_of_host(dst_);
  phase_key_ = r.u64();
  // The shard must follow the restored src — the reconstructed source was
  // built at its pre-fault pinning. Preserve the priority counter the PRIO
  // section already restored (set_event_identity resets it).
  const std::uint64_t prio = prio_state();
  set_event_identity(event_oid(), net_.shard_of_host(src_));
  restore_prio_state(prio);
  epoch_ = r.u64();
  rate_bps_ = r.i64();
  remaining_ = r.i64();
  interval_ = r.i64();
  seq_ = r.i64();
  packets_sent_ = r.i64();
}

void BoundarySink::on_packet(Simulator& sim, const Packet& pkt) {
  SPINELESS_DCHECK(!pkt.is_ack);
  static_cast<void>(pkt);  // only examined by the debug assertion
  if (finish_ >= 0) return;  // duplicate tail after completion
  delivered_ += std::min<std::int64_t>(kMss, target_ - delivered_);
  if (delivered_ >= target_) finish_ = sim.now();
}

void BoundarySink::save_state(SnapshotWriter& w) const {
  w.i64(target_);
  w.i64(delivered_);
  w.i64(finish_);
}

void BoundarySink::load_state(SnapshotReader& r) {
  const std::int64_t target = r.i64();
  SPINELESS_CHECK_MSG(target == target_,
                      "boundary sink target mismatch on restore");
  delivered_ = r.i64();
  finish_ = r.i64();
}

}  // namespace spineless::sim
