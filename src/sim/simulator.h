// Discrete-event simulation core: a monotonic clock and a priority queue of
// events. Events are delivered to EventSink::on_event with an opaque
// context word; ties in time break by schedule order (seq), making every
// run deterministic.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/error.h"
#include "util/units.h"

namespace spineless::sim {

class Simulator;

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(Simulator& sim, std::uint64_t ctx) = 0;
};

class Simulator {
 public:
  Time now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

  void schedule_at(Time t, EventSink* sink, std::uint64_t ctx) {
    SPINELESS_DCHECK(t >= now_);
    SPINELESS_DCHECK(sink != nullptr);
    queue_.push(Event{t, seq_++, sink, ctx});
  }
  void schedule_after(Time dt, EventSink* sink, std::uint64_t ctx) {
    schedule_at(now_ + dt, sink, ctx);
  }

  bool empty() const noexcept { return queue_.empty(); }

  // Runs events with time <= deadline; returns true if events remain.
  bool run_until(Time deadline);
  // Runs until the queue drains.
  void run();

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    EventSink* sink;
    std::uint64_t ctx;
    bool operator>(const Event& o) const noexcept {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace spineless::sim
