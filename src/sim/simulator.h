// Discrete-event simulation core: a monotonic clock and a priority queue of
// events. Events are delivered to EventSink::on_event with an opaque
// context word.
//
// Ordering. Ties in time break by a deterministic priority key
//   prio = (scheduler oid << 38) | scheduler counter
// where the *scheduler* is the sink whose on_event is executing when
// schedule_at is called (or the simulator's root context for scheduling
// done outside any event, e.g. pre-run setup). Every entity that schedules
// events owns an oid — assigned deterministically at construction — and a
// counter that advances once per event it schedules. Unlike a global
// schedule-order sequence number, this key does not depend on the
// interleaving of *other* entities' executions, so the sharded parallel
// engine (sharded_engine.h) reproduces it exactly and serial and sharded
// runs execute the identical event sequence. Keys are globally unique
// (oid, counter) pairs, which also makes the heap's pop order a total
// order. Within one scheduler, ties at equal time still fire in schedule
// order, exactly like the old global-seq scheme.
//
// The queue is a hand-rolled 4-ary implicit heap rather than
// std::priority_queue: events are popped and pushed once per packet hop, so
// the shallower tree (half the levels of a binary heap, each level a cache
// line of four 32-byte events) measurably raises simulator throughput.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/units.h"

namespace spineless::sim {

class Simulator;
class ShardRouter;

class EventSink {
 public:
  // Low bits of the priority key hold the per-scheduler counter; the high
  // bits hold the oid, so oids must fit in 64 - kPrioCounterBits bits.
  static constexpr int kPrioCounterBits = 38;
  static constexpr std::uint64_t kPrioCounterMask =
      (std::uint64_t{1} << kPrioCounterBits) - 1;
  static constexpr std::uint32_t kMaxOid =
      (std::uint32_t{1} << (64 - kPrioCounterBits)) - 1;

  // shard() values: >= 0 targets that shard of a sharded run; kShardLocal
  // always executes in whatever simulator scheduled it (links, self-timers
  // in serial runs); kShardGlobal executes barrier-synchronized between
  // shard windows (failure events, monitors).
  static constexpr std::int32_t kShardLocal = -1;
  static constexpr std::int32_t kShardGlobal = -2;

  virtual ~EventSink() = default;
  virtual void on_event(Simulator& sim, std::uint64_t ctx) = 0;

  // Assigns this sink's deterministic scheduling identity. Entities that
  // participate in sharded runs must be given one in a construction order
  // identical across serial and sharded execution (Network::next_oid does
  // this); sinks without one get a lazy oid on first schedule, which is
  // deterministic only in serial runs.
  void set_event_identity(std::uint32_t oid, std::int32_t shard) noexcept {
    SPINELESS_DCHECK(oid <= kMaxOid);
    prio_key_ = static_cast<std::uint64_t>(oid) << kPrioCounterBits;
    shard_ = shard;
  }
  std::int32_t shard() const noexcept { return shard_; }

  // --- Checkpoint support (sim/checkpoint.h) ---
  // A sink's identity (oid) names it across save/restore: the restore path
  // rebuilds the experiment in the same construction order, so equal oids
  // mean "the same entity". The raw key (oid + live counter) must round-
  // trip so a restored scheduler hands out the exact priorities an
  // uninterrupted run would.
  bool has_event_identity() const noexcept {
    return prio_key_ != kPrioUnassigned;
  }
  std::uint32_t event_oid() const noexcept {
    return static_cast<std::uint32_t>(prio_key_ >> kPrioCounterBits);
  }
  std::uint64_t prio_state() const noexcept { return prio_key_; }
  void restore_prio_state(std::uint64_t key) noexcept { prio_key_ = key; }

 private:
  friend class Simulator;
  static constexpr std::uint64_t kPrioUnassigned = ~std::uint64_t{0};

  // Next priority key this sink will hand out as a scheduler: oid in the
  // high bits, counter in the low bits, bumped per scheduled event.
  std::uint64_t prio_key_ = kPrioUnassigned;
  std::int32_t shard_ = kShardLocal;
};

// Cross-shard event transport, implemented by the sharded engine. A
// simulator with a router installed forwards events whose target sink
// belongs to another shard instead of pushing them onto its own heap.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  struct RoutedEvent {
    Time t;
    std::uint64_t prio;
    EventSink* sink;
    std::uint64_t ctx;
  };

  // Handoff from src_shard's window execution into dst_shard's lane;
  // merged into dst's heap at the next barrier. src_shard may be
  // Simulator::kControlShard for single-threaded contexts (setup, global
  // events), where the push lands directly in the target heap.
  virtual void post(std::int32_t src_shard, std::int32_t dst_shard,
                    const RoutedEvent& e) = 0;
  // Event for a kShardGlobal sink: executed barrier-synchronized, in
  // exact (t, prio) order relative to every shard event.
  virtual void post_global(std::int32_t src_shard, const RoutedEvent& e) = 0;
};

class Simulator {
 public:
  struct Event {
    Time t;
    std::uint64_t prio;
    EventSink* sink;
    std::uint64_t ctx;
    bool before(const Event& o) const noexcept {
      if (t != o.t) return t < o.t;
      return prio < o.prio;
    }
  };

  // self_shard() of a simulator driven single-threaded by the sharded
  // engine (setup + global events); its cross-shard posts go straight into
  // the target heaps instead of lanes.
  static constexpr std::int32_t kControlShard = -3;

  Simulator() { heap_.reserve(1024); }

  Time now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

  void schedule_at(Time t, EventSink* sink, std::uint64_t ctx) {
    SPINELESS_DCHECK(t >= now_);
    SPINELESS_DCHECK(sink != nullptr);
    const std::uint64_t prio = next_prio();
    if (router_ != nullptr && route_external(t, prio, sink, ctx)) return;
    push(Event{t, prio, sink, ctx});
  }
  void schedule_after(Time dt, EventSink* sink, std::uint64_t ctx) {
    schedule_at(now_ + dt, sink, ctx);
  }

  bool empty() const noexcept { return heap_.empty(); }

  // Runs events with time <= deadline; returns true if events remain.
  // Advances now() to the deadline even if the queue drains first.
  bool run_until(Time deadline);
  // Runs until the queue drains.
  void run();

  // --- Sharded-engine interface (see sharded_engine.h) ---

  // Installs the cross-shard router; self_shard is this simulator's shard
  // index (or kControlShard). Events for sinks of other shards are posted
  // to the router instead of the local heap.
  void set_shard_context(ShardRouter* router, std::int32_t self_shard) {
    router_ = router;
    self_shard_ = self_shard;
  }
  std::int32_t self_shard() const noexcept { return self_shard_; }

  // Runs events with key strictly below (t_bound, prio_bound). Unlike
  // run_until, now() is left at the last executed event — the bound is an
  // ordering fence (a pending global event's key), not a time advance.
  void run_until_key(Time t_bound, std::uint64_t prio_bound);

  // Budgeted window slices for the reactor engine's pollers: dispatch at
  // most `budget` events, so one shard's dense window cannot starve the
  // other pollers multiplexed onto the same reactor. Returns true while
  // events inside the bound remain (budget exhausted — call again);
  // run_until_bounded advances now() to the deadline only once the window
  // is fully drained, so a partially run window resumes seamlessly.
  bool run_until_bounded(Time deadline, int budget);
  bool run_until_key_bounded(Time t_bound, std::uint64_t prio_bound,
                             int budget);

  // Key of the earliest pending event; false if the heap is empty. Only
  // meaningful between runs (single-threaded phases of the engine).
  bool peek(Time* t, std::uint64_t* prio) const {
    if (heap_.empty()) return false;
    *t = heap_[0].t;
    *prio = heap_[0].prio;
    return true;
  }

  // Merges an externally routed event into the heap. Must not be called
  // while this simulator is mid-dispatch (the engine calls it only at
  // barriers and during setup, when the simulator is quiescent).
  void push_event(const Event& e) {
    SPINELESS_DCHECK(!top_hole_);
    SPINELESS_DCHECK(e.t >= now_);
    push(e);
  }

  // Executes one externally held event (a global, on the engine's control
  // simulator) as if it had been popped from the heap: advances now(),
  // counts it, and attributes scheduling done inside to the sink.
  void dispatch_external(const Event& e);

  // --- Checkpoint support (sim/checkpoint.h) ---
  // The raw pending-event array, in heap (array) order. Serializing and
  // restoring it verbatim preserves the exact pop order, which is what
  // makes restore + continue byte-identical. Only valid while quiescent
  // (between runs).
  const std::vector<Event>& pending_events() const noexcept { return heap_; }
  std::uint64_t root_prio_state() const noexcept { return root_key_; }
  std::uint32_t lazy_oid_state() const noexcept { return lazy_oid_; }

  // Replaces the full engine state on a freshly-constructed experiment.
  // The pre-run heap holds only setup events (no owned payloads), so
  // dropping it is leak-free; the restored heap array is installed as-is.
  void restore_state(Time now, std::uint64_t processed,
                     std::uint64_t root_key, std::uint32_t lazy_oid,
                     std::vector<Event> heap) {
    SPINELESS_CHECK(!top_hole_);
    heap_ = std::move(heap);
    now_ = now;
    processed_ = processed;
    root_key_ = root_key;
    lazy_oid_ = lazy_oid;
    cur_key_ = &root_key_;
  }

 private:
  std::uint64_t next_prio() {
    if (*cur_key_ == EventSink::kPrioUnassigned) assign_lazy_oid();
    SPINELESS_DCHECK((*cur_key_ & EventSink::kPrioCounterMask) !=
                     EventSink::kPrioCounterMask);
    return (*cur_key_)++;
  }
  void assign_lazy_oid();
  // Returns true if the event was handed to the router (target sink lives
  // in another shard or is global); out-of-line, serial runs never get here.
  bool route_external(Time t, std::uint64_t prio, EventSink* sink,
                      std::uint64_t ctx);
  // Pops and dispatches the top event, tracking the executing sink so
  // schedule_at can stamp priorities with its (oid, counter).
  void dispatch_top() {
    const Event ev = heap_[0];
    now_ = ev.t;
    ++processed_;
    cur_key_ = &ev.sink->prio_key_;
    top_hole_ = true;  // the root slot may be reused by the first push
    ev.sink->on_event(*this, ev.ctx);
    if (top_hole_) {
      top_hole_ = false;
      pop();
    }
  }

  void push(const Event& e) {
    // Replace-top: while the event being dispatched still occupies the
    // root, the first push lands there directly — equivalent to pop-then-
    // push but with a single sift-down instead of sift-down + sift-up.
    // Most events (hop arrivals, serialization completions, ACK timers)
    // schedule exactly one successor, so this is the common case.
    if (top_hole_) {
      top_hole_ = false;
      heap_[0] = e;
      sift_down(0);
      return;
    }
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c)
        if (heap_[c].before(heap_[best])) best = c;
      if (!heap_[best].before(heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  // Removes the minimum; heap_ must be non-empty.
  void pop() {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  std::vector<Event> heap_;  // 4-ary min-heap ordered by (t, prio)
  // True while the root event is being dispatched and its slot may be
  // reused by the next push (see push()).
  bool top_hole_ = false;
  Time now_ = 0;
  std::uint64_t processed_ = 0;

  // Priority key of the root (outside-any-event) scheduling context: oid 0.
  std::uint64_t root_key_ = 0;
  // Key slot of whichever context is scheduling right now: the executing
  // sink's during dispatch, the root's otherwise.
  std::uint64_t* cur_key_ = &root_key_;
  // Lazy oids for sinks never given an identity, assigned from the top of
  // the oid space downward so they cannot collide with Network-assigned
  // oids, which grow upward from 1.
  std::uint32_t lazy_oid_ = EventSink::kMaxOid;

  ShardRouter* router_ = nullptr;
  std::int32_t self_shard_ = EventSink::kShardLocal;
};

}  // namespace spineless::sim
