// Discrete-event simulation core: a monotonic clock and a priority queue of
// events. Events are delivered to EventSink::on_event with an opaque
// context word; ties in time break by schedule order (seq), making every
// run deterministic.
//
// The queue is a hand-rolled 4-ary implicit heap rather than
// std::priority_queue: events are popped and pushed once per packet hop, so
// the shallower tree (half the levels of a binary heap, each level a cache
// line of four 32-byte events) measurably raises simulator throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"
#include "util/units.h"

namespace spineless::sim {

class Simulator;

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(Simulator& sim, std::uint64_t ctx) = 0;
};

class Simulator {
 public:
  Simulator() { heap_.reserve(1024); }

  Time now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

  void schedule_at(Time t, EventSink* sink, std::uint64_t ctx) {
    SPINELESS_DCHECK(t >= now_);
    SPINELESS_DCHECK(sink != nullptr);
    push(Event{t, seq_++, sink, ctx});
  }
  void schedule_after(Time dt, EventSink* sink, std::uint64_t ctx) {
    schedule_at(now_ + dt, sink, ctx);
  }

  bool empty() const noexcept { return heap_.empty(); }

  // Runs events with time <= deadline; returns true if events remain.
  bool run_until(Time deadline);
  // Runs until the queue drains.
  void run();

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    EventSink* sink;
    std::uint64_t ctx;
    bool before(const Event& o) const noexcept {
      if (t != o.t) return t < o.t;
      return seq < o.seq;
    }
  };

  void push(const Event& e) {
    // Replace-top: while the event being dispatched still occupies the
    // root, the first push lands there directly — equivalent to pop-then-
    // push but with a single sift-down instead of sift-down + sift-up.
    // Most events (hop arrivals, serialization completions, ACK timers)
    // schedule exactly one successor, so this is the common case.
    if (top_hole_) {
      top_hole_ = false;
      heap_[0] = e;
      sift_down(0);
      return;
    }
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!heap_[i].before(heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c)
        if (heap_[c].before(heap_[best])) best = c;
      if (!heap_[best].before(heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  // Removes the minimum; heap_ must be non-empty.
  void pop() {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  std::vector<Event> heap_;  // 4-ary min-heap ordered by (t, seq)
  // True while the root event is being dispatched and its slot may be
  // reused by the next push (see push()).
  bool top_hole_ = false;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace spineless::sim
