#include "sim/network.h"

#include <algorithm>

#include "sim/checkpoint.h"
#include "util/walltime.h"

namespace spineless::sim {

// Switch device: forwards by ECMP or VRF tables; local rack traffic goes to
// the host port.
class Network::SwitchDev : public Device {
 public:
  void init(Network* net, NodeId id, int slot) {
    net_ = net;
    id_ = id;
    slot_ = slot;
  }
  void receive(Simulator& sim, PacketNode* node) override {
    net_->forward_at_switch(sim, id_, slot_, node);
  }

 private:
  Network* net_ = nullptr;
  NodeId id_ = 0;
  int slot_ = 0;
};

// Host device: hands arriving packets to the flow endpoint.
class Network::HostDev : public Device {
 public:
  void init(Network* net, int slot) {
    net_ = net;
    slot_ = slot;
  }
  void receive(Simulator& sim, PacketNode* node) override {
    net_->deliver(sim, slot_, node->pkt);
    net_->pools_[static_cast<std::size_t>(slot_)]->release(node);
  }

 private:
  Network* net_ = nullptr;
  int slot_ = 0;
};

Network::Network(const Graph& g, const NetworkConfig& cfg)
    : graph_(g), cfg_(cfg) {
  num_shards_ = std::clamp(cfg_.intra_jobs, 1,
                           static_cast<int>(g.num_switches()));
  cfg_.intra_jobs = num_shards_;
  // Block partition: shard s owns switches [s*S/K .. (s+1)*S/K). DRing and
  // leaf-spine builders number nodes so that blocks are topology-adjacent
  // (ring arcs, pod groups), which keeps most hops intra-shard.
  switch_shard_.resize(static_cast<std::size_t>(g.num_switches()));
  for (NodeId n = 0; n < g.num_switches(); ++n) {
    switch_shard_[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(
        (static_cast<std::int64_t>(n) * num_shards_) / g.num_switches());
  }
  const int table_jobs =
      cfg_.table_jobs > 0 ? cfg_.table_jobs : num_shards_;
  if (table_jobs > 1)
    table_runner_ = std::make_unique<util::Runner>(
        table_jobs, util::Runner::Nested::kAllow);
  shard_stats_.resize(static_cast<std::size_t>(num_shards_));
  pools_.reserve(static_cast<std::size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s)
    pools_.push_back(std::make_unique<PacketPool>());

  rebuild_tables(nullptr);
  if (cfg_.host_rate_bps == 0) cfg_.host_rate_bps = cfg_.link_rate_bps;

  // Everything below consumes oids in a fixed construction order — the
  // same order every run, serial or sharded, so priorities (and therefore
  // event execution order) are identical for any intra_jobs.
  switches_ =
      std::make_unique<SwitchDev[]>(static_cast<std::size_t>(g.num_switches()));
  for (NodeId n = 0; n < g.num_switches(); ++n) {
    SwitchDev& dev = switches_[static_cast<std::size_t>(n)];
    dev.init(this, n, shard_of_switch(n));
    dev.set_event_identity(next_oid(), shard_of_switch(n));
  }
  if (cfg_.flowlet_gap > 0)
    flowlets_.resize(static_cast<std::size_t>(g.num_switches()));
  hosts_ =
      std::make_unique<HostDev[]>(static_cast<std::size_t>(g.total_servers()));
  for (HostId h = 0; h < g.total_servers(); ++h) {
    HostDev& dev = hosts_[static_cast<std::size_t>(h)];
    dev.init(this, shard_of_host(h));
    dev.set_event_identity(next_oid(), shard_of_host(h));
  }

  // A link belongs to the shard of its *transmitting* node: every event it
  // sinks (serialization completions) is scheduled from that shard, so it
  // stays kShardLocal. Its pool is the transmitter's — enqueue-side
  // allocs/releases then never cross shards; only delivered packets do.
  auto add_link = [&](std::vector<Link>& vec, std::int64_t rate, NodeId tx,
                      Device* peer) {
    vec.emplace_back(rate, cfg_.link_delay, cfg_.queue_bytes, peer,
                     pools_[static_cast<std::size_t>(shard_of_switch(tx))].get(),
                     cfg_.ecn_threshold_bytes);
    vec.back().set_event_identity(next_oid(), EventSink::kShardLocal);
  };
  net_links_.reserve(2 * static_cast<std::size_t>(g.num_links()));
  for (topo::LinkId l = 0; l < g.num_links(); ++l) {
    const topo::Link& link = g.link(l);
    add_link(net_links_, cfg_.link_rate_bps, link.a,
             &switches_[static_cast<std::size_t>(link.b)]);
    add_link(net_links_, cfg_.link_rate_bps, link.b,
             &switches_[static_cast<std::size_t>(link.a)]);
  }
  host_up_.reserve(static_cast<std::size_t>(g.total_servers()));
  host_down_.reserve(static_cast<std::size_t>(g.total_servers()));
  for (HostId h = 0; h < g.total_servers(); ++h) {
    const NodeId tor = g.tor_of_host(h);
    add_link(host_up_, cfg_.host_rate_bps, tor,
             &switches_[static_cast<std::size_t>(tor)]);
    add_link(host_down_, cfg_.host_rate_bps, tor,
             &hosts_[static_cast<std::size_t>(h)]);
  }
}

// Fires the two phases of a scheduled failure: physical down, then the
// reconverged tables landing in the FIBs.
class Network::FailureEvent : public EventSink {
 public:
  FailureEvent(Network& net, topo::LinkId link) : net_(net), link_(link) {}
  void on_event(Simulator&, std::uint64_t ctx) override {
    if (ctx == 0) {
      net_.take_link_down(link_);
    } else {
      net_.reconverge_tables();
    }
  }

 private:
  Network& net_;
  topo::LinkId link_;
};

Network::~Network() = default;

void Network::take_link_down(topo::LinkId link) {
  set_link_phys(link, /*up=*/false);
  set_link_routed_out(link, /*out=*/true);
}

void Network::bring_link_up(topo::LinkId link) {
  set_link_phys(link, /*up=*/true);
  set_link_routed_out(link, /*out=*/false);
}

void Network::set_link_phys(topo::LinkId link, bool up) {
  net_links_[2 * static_cast<std::size_t>(link)].set_down(!up);
  net_links_[2 * static_cast<std::size_t>(link) + 1].set_down(!up);
}

void Network::set_link_gray(topo::LinkId link, double drop_prob,
                            double corrupt_prob, std::uint64_t seed) {
  // Mix the direction in so the two streams are independent but both pure
  // functions of (plan seed, link).
  net_links_[2 * static_cast<std::size_t>(link)].set_gray(
      drop_prob, corrupt_prob, splitmix64(seed));
  net_links_[2 * static_cast<std::size_t>(link) + 1].set_gray(
      drop_prob, corrupt_prob, splitmix64(seed ^ 0x9e3779b97f4a7c15ULL));
}

void Network::clear_link_gray(topo::LinkId link) {
  net_links_[2 * static_cast<std::size_t>(link)].clear_gray();
  net_links_[2 * static_cast<std::size_t>(link) + 1].clear_gray();
}

void Network::set_link_rate_factor(topo::LinkId link, double factor) {
  net_links_[2 * static_cast<std::size_t>(link)].set_rate_factor(factor);
  net_links_[2 * static_cast<std::size_t>(link) + 1].set_rate_factor(factor);
}

void Network::set_link_routed_out(topo::LinkId link, bool out) {
  if (out) {
    down_links_.insert(link);
  } else {
    down_links_.erase(link);
  }
  pending_repair_.push_back(link);
}

void Network::send_hello(Simulator& sim, topo::LinkId link, int dir) {
  Packet pkt;
  pkt.flow_id = kCtrlFlowId;
  pkt.size_bytes = kHelloPacketBytes;
  pkt.seq = 2 * static_cast<std::int64_t>(link) + dir;
  const topo::Link& l = graph_.link(link);
  pkt.dst_tor = dir == 0 ? l.b : l.a;
  net_links_[2 * static_cast<std::size_t>(link) + dir].enqueue(sim, pkt);
}

// Only the table the active mode forwards with is computed; the other
// would be dead weight per construction and per reconvergence. Wall time
// is accumulated into table_build_s_ (BENCH_*.json's table_build_s), and
// destinations fan over table_runner_ when the network is sharded.
void Network::rebuild_tables(const routing::LinkSet* dead) {
  const double start = util::monotonic_seconds();
  if (cfg_.mode == RoutingMode::kEcmp) {
    ecmp_ = std::make_unique<routing::EcmpTable>(
        routing::EcmpTable::compute(graph_, dead, table_runner_.get()));
    if (dead != nullptr && cfg_.validate_tables)
      SPINELESS_CHECK_MSG(routing::ecmp_table_valid(graph_, *ecmp_, dead),
                          "reconverged ECMP table failed validation");
  } else if (cfg_.mode == RoutingMode::kShortestUnion) {
    vrf_ = std::make_unique<routing::VrfTable>(
        routing::VrfTable::compute(graph_, cfg_.su_k, dead,
                                   table_runner_.get()));
  }
  installed_dead_ = dead != nullptr ? *dead : routing::LinkSet{};
  pending_repair_.clear();
  table_build_s_ += util::monotonic_seconds() - start;
}

void Network::reconverge_tables() { rebuild_tables(&down_links_); }

void Network::repair_tables() {
  // Links whose routed-out state actually differs from what the installed
  // tables were built against (a flap that went down and up between
  // repairs is a no-op).
  std::sort(pending_repair_.begin(), pending_repair_.end());
  pending_repair_.erase(
      std::unique(pending_repair_.begin(), pending_repair_.end()),
      pending_repair_.end());
  std::vector<std::pair<topo::LinkId, bool>> changed;
  for (const topo::LinkId l : pending_repair_) {
    const bool now_dead = down_links_.contains(l);
    if (now_dead != installed_dead_.contains(l)) changed.emplace_back(l, now_dead);
  }
  pending_repair_.clear();
  if (changed.empty()) {
    installed_dead_ = down_links_;
    return;
  }
  const double start = util::monotonic_seconds();
  const auto n = static_cast<std::size_t>(graph_.num_switches());
  std::vector<char> mark(n, 0);
  std::vector<NodeId> dsts;
  for (const auto& [l, now_dead] : changed) {
    std::vector<NodeId> aff;
    if (ecmp_ != nullptr) {
      aff = ecmp_->destinations_affected_by(graph_, l, now_dead);
    } else if (vrf_ != nullptr) {
      aff = vrf_->destinations_affected_by(graph_, l, now_dead);
    }
    for (const NodeId d : aff) {
      if (!mark[static_cast<std::size_t>(d)]) {
        mark[static_cast<std::size_t>(d)] = 1;
        dsts.push_back(d);
      }
    }
  }
  std::sort(dsts.begin(), dsts.end());
  if (2 * dsts.size() >= n) {
    // Most of the table changes anyway — the full rebuild's tighter loops
    // win (it also resets installed_dead_ and the wall-time accounting).
    rebuild_tables(&down_links_);
    return;
  }
  if (ecmp_ != nullptr) {
    ecmp_->recompute_destinations(graph_, &down_links_, dsts,
                                  table_runner_.get());
    if (cfg_.validate_tables)
      SPINELESS_CHECK_MSG(
          routing::ecmp_table_valid(graph_, *ecmp_, &down_links_),
          "incrementally repaired ECMP table failed validation");
  } else if (vrf_ != nullptr) {
    vrf_->recompute_destinations(graph_, &down_links_, dsts,
                                 table_runner_.get());
  }
  installed_dead_ = down_links_;
  table_build_s_ += util::monotonic_seconds() - start;
}

void Network::schedule_link_failure(Simulator& sim, topo::LinkId link, Time at,
                                    Time reconvergence_delay) {
  failure_events_.push_back(std::make_unique<FailureEvent>(*this, link));
  FailureEvent* ev = failure_events_.back().get();
  // Failures mutate whole-network state (every Link of the pair, the
  // forwarding tables), so in sharded runs they execute barrier-
  // synchronized between windows, at exactly their serial (t, prio) slot.
  ev->set_event_identity(next_oid(), EventSink::kShardGlobal);
  sim.schedule_at(at, ev, /*ctx=*/0);
  sim.schedule_at(at + reconvergence_delay, ev, /*ctx=*/1);
}

void Network::register_flow(std::int32_t flow_id, Endpoint* source,
                            Endpoint* sink) {
  const auto idx = static_cast<std::size_t>(flow_id);
  if (sources_.size() <= idx) {
    sources_.resize(idx + 1, nullptr);
    sinks_.resize(idx + 1, nullptr);
  }
  sources_[idx] = source;
  sinks_[idx] = sink;
  // Preallocate the trace slot while registration is still single-threaded:
  // shards then write disjoint traces_[i] entries without ever resizing
  // the outer vector mid-run.
  if (cfg_.trace_paths && traces_.size() <= idx) traces_.resize(idx + 1);
}

void Network::set_flow_routes(std::int32_t flow_id, routing::Path forward) {
  SPINELESS_CHECK(!forward.empty());
  SPINELESS_CHECK_MSG(forward.size() <= 250, "route too long for route_idx");
  auto routes = std::make_unique<FlowRoutes>();
  routes->reverse.assign(forward.rbegin(), forward.rend());
  routes->forward = std::move(forward);
  const auto idx = static_cast<std::size_t>(flow_id);
  if (routes_.size() <= idx) routes_.resize(idx + 1);
  routes_[idx] = std::move(routes);
}

void Network::inject_from_host(Simulator& sim, Packet pkt) {
  pkt.vrf = static_cast<std::int8_t>(cfg_.su_k);  // hosts live in VRF K
  pkt.hops = 0;
  if (cfg_.mode == RoutingMode::kSourceRouted) {
    const auto idx = static_cast<std::size_t>(pkt.flow_id);
    SPINELESS_CHECK_MSG(idx < routes_.size() && routes_[idx] != nullptr,
                        "kSourceRouted flow without set_flow_routes");
    pkt.route = pkt.is_ack ? &routes_[idx]->reverse : &routes_[idx]->forward;
    pkt.route_idx = 0;
  }
  host_up_[static_cast<std::size_t>(pkt.src_host)].enqueue(sim, pkt);
}

Network::FlowletState& Network::FlowletTable::operator[](std::int32_t flow) {
  if (slots_.empty()) slots_.resize(16);
  std::size_t mask = slots_.size() - 1;
  for (std::size_t i = probe_start(flow, mask);; i = (i + 1) & mask) {
    Slot& s = slots_[i];
    if (s.flow == flow) return s.state;
    if (s.flow < 0) {
      if ((size_ + 1) * 4 > slots_.size() * 3) {  // keep load <= 3/4
        grow();
        return (*this)[flow];
      }
      s.flow = flow;
      ++size_;
      return s.state;
    }
  }
}

void Network::FlowletTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.flow < 0) continue;
    std::size_t i = probe_start(s.flow, mask);
    while (slots_[i].flow >= 0) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

topo::LinkId Network::link_to_neighbor(NodeId node, NodeId neighbor) const {
  for (const routing::Port& p : graph_.neighbors(node)) {
    if (p.neighbor == neighbor) return p.link;
  }
  throw Error("source route hop is not a link");
}

std::uint64_t Network::hash_key(Simulator& sim, NodeId node,
                                const Packet& pkt) {
  std::uint64_t key =
      static_cast<std::uint64_t>(pkt.flow_id) * 0x9e3779b97f4a7c15ULL ^
      (static_cast<std::uint64_t>(node) << 32);
  if (cfg_.flowlet_gap > 0) {
    FlowletState& state = flowlets_[static_cast<std::size_t>(node)][pkt.flow_id];
    if (state.last != 0 && sim.now() - state.last > cfg_.flowlet_gap)
      ++state.id;  // idle gap long enough to reorder-safely switch paths
    state.last = sim.now();
    key ^= static_cast<std::uint64_t>(state.id) * 0xc2b2ae3d27d4eb4fULL;
  }
  return key;
}

Link& Network::out_link(NodeId node, topo::LinkId link) {
  const bool a_to_b = graph_.link(link).a == node;
  return net_links_[2 * static_cast<std::size_t>(link) + (a_to_b ? 0 : 1)];
}

void Network::forward_at_switch(Simulator& sim, NodeId node, int slot,
                                PacketNode* packet_node) {
  PacketPool& pool = *pools_[static_cast<std::size_t>(slot)];
  NetStats& stats = shard_stats_[static_cast<std::size_t>(slot)].s;
  Packet& pkt = packet_node->pkt;  // mutated in place; the node moves on
  if (pkt.flow_id < 0) {
    // In-band control (BFD hello): consumed by the adjacent switch, never
    // forwarded. A corrupted hello failed its checksum — treat as lost.
    if (hello_handler_ != nullptr && !pkt.corrupted)
      hello_handler_->on_hello(sim, pkt);
    pool.release(packet_node);
    return;
  }
  if (cfg_.trace_paths && !pkt.is_ack && pkt.seq == 0) {
    const auto idx = static_cast<std::size_t>(pkt.flow_id);
    if (traces_.size() <= idx) traces_.resize(idx + 1);
    // Only the first copy extends the trace: hop counts of duplicates
    // restart at 0 and never match the recorded length again.
    if (static_cast<std::size_t>(pkt.hops) == traces_[idx].size())
      traces_[idx].push_back(node);
  }
  if (pkt.dst_tor == node) {
    // Local rack: the subnet is directly connected (in every VRF — the
    // standard connected-route leak), hand to the host port.
    host_down_[static_cast<std::size_t>(pkt.dst_host)].enqueue_node(
        sim, packet_node);
    return;
  }
  if (++pkt.hops > 64) {
    ++stats.ttl_drops;
    pool.release(packet_node);
    return;
  }
  if (cfg_.mode == RoutingMode::kSourceRouted) {
    SPINELESS_DCHECK(pkt.route != nullptr &&
                     (*pkt.route)[pkt.route_idx] == node);
    const NodeId next = (*pkt.route)[pkt.route_idx + 1];
    ++pkt.route_idx;
    out_link(node, link_to_neighbor(node, next)).enqueue_node(sim,
                                                              packet_node);
    return;
  }
  // Hash key: flow and current switch — per-hop independent ECMP, like
  // hashed 5-tuple forwarding with per-switch seeds (plus the flowlet id
  // when flowlet switching is on).
  const std::uint64_t key = hash_key(sim, node, pkt);

  if (cfg_.mode == RoutingMode::kEcmp) {
    const auto hops = ecmp_->next_hops(node, pkt.dst_tor);
    if (hops.empty()) {
      ++stats.no_route_drops;  // destination cut off by failures
      pool.release(packet_node);
      return;
    }
    const routing::Port& p = hops[pick(key, hops.size())];
    out_link(node, p.link).enqueue_node(sim, packet_node);
    return;
  }
  const auto& hops = vrf_->next_hops(node, pkt.vrf, pkt.dst_tor);
  if (hops.empty()) {
    ++stats.no_route_drops;
    pool.release(packet_node);
    return;
  }
  std::size_t choice;
  if (cfg_.weighted_su) {
    std::int64_t total = 0;
    for (const auto& hop : hops) total += hop.weight;
    auto r = static_cast<std::int64_t>(
        splitmix64(key ^ cfg_.ecmp_salt) % static_cast<std::uint64_t>(total));
    choice = 0;
    while (r >= hops[choice].weight) {
      r -= hops[choice].weight;
      ++choice;
    }
  } else {
    choice = pick(key, hops.size());
  }
  const routing::VrfHop& h = hops[choice];
  pkt.vrf = static_cast<std::int8_t>(h.next_vrf);
  out_link(node, h.port.link).enqueue_node(sim, packet_node);
}

void Network::deliver(Simulator& sim, int slot, const Packet& pkt) {
  NetStats& stats = shard_stats_[static_cast<std::size_t>(slot)].s;
  if (pkt.corrupted) {
    // End-to-end checksum: the packet crossed the fabric but its payload
    // is garbage — discard silently, TCP recovers it like any loss.
    ++stats.corrupt_drops;
    return;
  }
  ++stats.delivered;
  if (!pkt.is_ack) stats.delivered_bytes += pkt.size_bytes;
  const auto idx = static_cast<std::size_t>(pkt.flow_id);
  SPINELESS_DCHECK(idx < sinks_.size());
  Endpoint* ep = pkt.is_ack ? sources_[idx] : sinks_[idx];
  SPINELESS_DCHECK(ep != nullptr);
  ep->on_packet(sim, pkt);
}

routing::Path Network::traced_path(std::int32_t flow_id) const {
  const auto idx = static_cast<std::size_t>(flow_id);
  return idx < traces_.size() ? traces_[idx] : routing::Path{};
}

Network::NetStats Network::stats() const {
  NetStats s;
  for (const ShardStats& stripe : shard_stats_) {
    s.ttl_drops += stripe.s.ttl_drops;
    s.no_route_drops += stripe.s.no_route_drops;
    s.delivered += stripe.s.delivered;
    s.corrupt_drops += stripe.s.corrupt_drops;
    s.delivered_bytes += stripe.s.delivered_bytes;
  }
  auto account = [&s](const std::vector<Link>& links) {
    for (const Link& l : links) {
      s.queue_drops += l.stats().drops;
      s.blackhole_drops += l.stats().down_drops;
      s.gray_drops += l.stats().gray_drops;
    }
  };
  account(net_links_);
  account(host_up_);
  account(host_down_);
  return s;
}

std::vector<std::int64_t> Network::queue_occupancy() const {
  std::vector<std::int64_t> occ;
  occ.reserve(net_links_.size());
  for (const Link& l : net_links_) occ.push_back(l.queued_bytes());
  return occ;
}

std::vector<double> Network::link_utilization(Time elapsed) const {
  SPINELESS_CHECK(elapsed > 0);
  std::vector<double> util;
  util.reserve(net_links_.size());
  const double capacity_bytes = static_cast<double>(cfg_.link_rate_bps) / 8.0 *
                                units::to_seconds(elapsed);
  for (const Link& l : net_links_)
    util.push_back(static_cast<double>(l.stats().bytes_tx) / capacity_bytes);
  return util;
}

Network::UtilizationStats Network::utilization_stats(Time elapsed) const {
  const auto util = link_utilization(elapsed);
  UtilizationStats s;
  if (util.empty()) return s;
  Summary summary;
  for (double u : util) summary.add(u);
  s.mean = summary.mean();
  s.max = summary.max();
  s.p99 = summary.p99();
  return s;
}

void Network::FlowletTable::save_state(SnapshotWriter& w) const {
  w.u64(slots_.size());
  w.u64(size_);
  for (const Slot& s : slots_) {
    w.i64(s.flow);
    w.i64(s.state.last);
    w.u32(s.state.id);
  }
}

void Network::FlowletTable::load_state(SnapshotReader& r) {
  slots_.assign(r.u64(), Slot{});
  size_ = r.u64();
  for (Slot& s : slots_) {
    s.flow = static_cast<std::int32_t>(r.i64());
    s.state.last = r.i64();
    s.state.id = r.u32();
  }
}

void Network::collect_sinks(SinkRegistry& reg) {
  // Mirror of the constructor's (and schedule_link_failure's) oid
  // assignment order.
  for (NodeId n = 0; n < graph_.num_switches(); ++n)
    reg.add(&switches_[static_cast<std::size_t>(n)], CtxKind::kPacketNode,
            shard_of_switch(n));
  for (HostId h = 0; h < graph_.total_servers(); ++h)
    reg.add(&hosts_[static_cast<std::size_t>(h)], CtxKind::kPacketNode,
            shard_of_host(h));
  for (Link& l : net_links_) reg.add(&l, CtxKind::kPlain);
  for (HostId h = 0; h < graph_.total_servers(); ++h) {
    reg.add(&host_up_[static_cast<std::size_t>(h)], CtxKind::kPlain);
    reg.add(&host_down_[static_cast<std::size_t>(h)], CtxKind::kPlain);
  }
  for (const auto& ev : failure_events_) reg.add(ev.get(), CtxKind::kPlain);
}

namespace {

void save_link_set(SnapshotWriter& w, const routing::LinkSet& set,
                   topo::LinkId num_links) {
  // LinkSet has no iteration — membership-scan the (small) id space.
  w.u64(set.size());
  for (topo::LinkId l = 0; l < num_links; ++l)
    if (set.contains(l)) w.i64(l);
}

routing::LinkSet load_link_set(SnapshotReader& r) {
  routing::LinkSet set;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i)
    set.insert(static_cast<topo::LinkId>(r.i64()));
  return set;
}

void save_net_stats(SnapshotWriter& w, const Network::NetStats& s) {
  w.i64(s.queue_drops);
  w.i64(s.ttl_drops);
  w.i64(s.no_route_drops);
  w.i64(s.delivered);
  w.i64(s.blackhole_drops);
  w.i64(s.gray_drops);
  w.i64(s.corrupt_drops);
  w.i64(s.delivered_bytes);
}

void load_net_stats(SnapshotReader& r, Network::NetStats* s) {
  s->queue_drops = r.i64();
  s->ttl_drops = r.i64();
  s->no_route_drops = r.i64();
  s->delivered = r.i64();
  s->blackhole_drops = r.i64();
  s->gray_drops = r.i64();
  s->corrupt_drops = r.i64();
  s->delivered_bytes = r.i64();
}

}  // namespace

void Network::save_state(SnapshotWriter& w, const PacketCodec& codec) const {
  // Shape guards: a snapshot from a different topology/config must fail
  // loudly at load, not misalign silently.
  w.u64(static_cast<std::uint64_t>(graph_.num_switches()));
  w.u64(static_cast<std::uint64_t>(graph_.total_servers()));
  w.u64(static_cast<std::uint64_t>(graph_.num_links()));
  w.u32(next_oid_);
  for (const ShardStats& stripe : shard_stats_) save_net_stats(w, stripe.s);
  for (const Link& l : net_links_) l.save_state(w, codec);
  for (const Link& l : host_up_) l.save_state(w, codec);
  for (const Link& l : host_down_) l.save_state(w, codec);
  save_link_set(w, down_links_, graph_.num_links());
  save_link_set(w, installed_dead_, graph_.num_links());
  w.u64(pending_repair_.size());
  for (const topo::LinkId l : pending_repair_) w.i64(l);
  w.u64(flowlets_.size());
  for (const FlowletTable& t : flowlets_) t.save_state(w);
  w.u64(traces_.size());
  for (const routing::Path& p : traces_) {
    w.u64(p.size());
    for (const NodeId n : p) w.i64(n);
  }
}

void Network::load_state(SnapshotReader& r, const PacketCodec& codec) {
  SPINELESS_CHECK_MSG(
      r.u64() == static_cast<std::uint64_t>(graph_.num_switches()) &&
          r.u64() == static_cast<std::uint64_t>(graph_.total_servers()) &&
          r.u64() == static_cast<std::uint64_t>(graph_.num_links()),
      "snapshot topology shape does not match this network");
  SPINELESS_CHECK_MSG(r.u32() == next_oid_,
                      "snapshot oid space does not match — the experiment "
                      "was not reconstructed identically");
  for (ShardStats& stripe : shard_stats_) load_net_stats(r, &stripe.s);
  for (Link& l : net_links_) l.load_state(r, codec);
  for (Link& l : host_up_) l.load_state(r, codec);
  for (Link& l : host_down_) l.load_state(r, codec);
  const routing::LinkSet down = load_link_set(r);
  const routing::LinkSet installed = load_link_set(r);
  std::vector<topo::LinkId> pending(r.u64());
  for (topo::LinkId& l : pending) l = static_cast<topo::LinkId>(r.i64());
  // Forwarding tables are rebuilt (deterministic functions of graph +
  // installed dead set), not serialized; the wall time this takes lands in
  // table_build_s_, which is excluded from byte-identity comparisons.
  if (!installed.empty()) rebuild_tables(&installed);
  down_links_ = down;
  pending_repair_ = std::move(pending);
  const std::uint64_t n_flowlets = r.u64();
  SPINELESS_CHECK(n_flowlets == flowlets_.size());
  for (FlowletTable& t : flowlets_) t.load_state(r);
  traces_.resize(r.u64());
  for (routing::Path& p : traces_) {
    p.resize(r.u64());
    for (NodeId& n : p) n = static_cast<NodeId>(r.i64());
  }
}

const routing::Path* Network::route_for(std::int32_t flow_id,
                                        bool is_ack) const {
  const auto idx = static_cast<std::size_t>(flow_id);
  SPINELESS_CHECK_MSG(idx < routes_.size() && routes_[idx] != nullptr,
                      "restored packet references an unknown source route");
  return is_ack ? &routes_[idx]->reverse : &routes_[idx]->forward;
}

std::int64_t Network::max_network_queue_bytes() const {
  std::int64_t peak = 0;
  for (const Link& l : net_links_)
    peak = std::max(peak, l.stats().max_queue_bytes);
  return peak;
}

}  // namespace spineless::sim
