#include "sim/sharded_engine.h"

#include "util/runner.h"

namespace spineless::sim {

ShardedEngine::ShardedEngine(Network& net)
    : net_(net),
      num_shards_(net.num_shards()),
      lookahead_(net.config().link_delay),
      lanes_(static_cast<std::size_t>(num_shards_) *
             static_cast<std::size_t>(num_shards_)),
      barrier_(num_shards_) {
  SPINELESS_CHECK_MSG(lookahead_ > 0,
                      "sharded engine needs a positive link delay lookahead");
  sims_.reserve(static_cast<std::size_t>(num_shards_));
  for (int s = 0; s < num_shards_; ++s) {
    sims_.push_back(std::make_unique<Simulator>());
    sims_.back()->set_shard_context(this, s);
  }
  control_.set_shard_context(this, Simulator::kControlShard);
  threads_.reserve(static_cast<std::size_t>(num_shards_ - 1));
  for (int s = 1; s < num_shards_; ++s)
    threads_.emplace_back([this, s] { worker_main(s); });
}

ShardedEngine::~ShardedEngine() {
  quit_.store(true, std::memory_order_release);
  run_gen_.fetch_add(1, std::memory_order_acq_rel);
  run_gen_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardedEngine::post(std::int32_t src_shard, std::int32_t dst_shard,
                         const RoutedEvent& e) {
  const Simulator::Event ev{e.t, e.prio, e.sink, e.ctx};
  if (src_shard == Simulator::kControlShard) {
    // Setup or a global event: every shard is quiescent, push directly.
    sims_[static_cast<std::size_t>(dst_shard)]->push_event(ev);
    return;
  }
  // Mid-window handoff: the propagation delay guarantees the event lies at
  // or beyond the window's lookahead horizon, so merging it at the next
  // barrier cannot be late.
  SPINELESS_DCHECK(e.t >= lane_floor_);
  lanes_[static_cast<std::size_t>(src_shard) *
             static_cast<std::size_t>(num_shards_) +
         static_cast<std::size_t>(dst_shard)]
      .events.push_back(ev);
}

void ShardedEngine::post_global(std::int32_t src_shard, const RoutedEvent& e) {
  const Simulator::Event ev{e.t, e.prio, e.sink, e.ctx};
  if (src_shard == Simulator::kControlShard) {
    globals_.insert(ev);
    return;
  }
  // A shard scheduling a global mid-window must respect the same lookahead
  // horizon as lane traffic — the planner may already have advanced other
  // shards up to it.
  SPINELESS_DCHECK(e.t >= lane_floor_);
  std::lock_guard<std::mutex> lock(global_mu_);
  global_inbox_.push_back(ev);
}

std::vector<Simulator::Event> ShardedEngine::pending_globals() const {
  SPINELESS_CHECK(global_inbox_.empty());  // quiescent boundary only
  return {globals_.begin(), globals_.end()};
}

void ShardedEngine::restore_globals(
    const std::vector<Simulator::Event>& events) {
  SPINELESS_CHECK(global_inbox_.empty());
  globals_.clear();
  for (const Simulator::Event& e : events) globals_.insert(e);
}

std::uint64_t ShardedEngine::events_processed() const {
  std::uint64_t n = control_.events_processed();
  for (const auto& sim : sims_) n += sim->events_processed();
  return n;
}

void ShardedEngine::run_until(Time deadline) {
  SPINELESS_DCHECK(deadline >= deadline_);
  deadline_ = deadline;
  plan();
  if (phase_ == Phase::kStop) return;  // nothing due: clocks already parked
  done_count_.store(0, std::memory_order_relaxed);
  run_gen_.fetch_add(1, std::memory_order_acq_rel);
  run_gen_.notify_all();
  participant(/*s=*/0);
  // Wait for every worker to leave the round before returning: a repeated
  // run_until re-plans on this thread, and that write to the phase state
  // must not race a worker's final post-barrier phase read.
  int done = done_count_.load(std::memory_order_acquire);
  while (done != num_shards_ - 1) {
    done_count_.wait(done);
    done = done_count_.load(std::memory_order_acquire);
  }
}

void ShardedEngine::worker_main(int shard) {
  util::ParallelRegion region;
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen = run_gen_.load(std::memory_order_acquire);
    while (gen == seen) {
      run_gen_.wait(gen);
      gen = run_gen_.load(std::memory_order_acquire);
    }
    seen = gen;
    if (quit_.load(std::memory_order_acquire)) return;
    participant(shard);
    done_count_.fetch_add(1, std::memory_order_acq_rel);
    done_count_.notify_all();
  }
}

void ShardedEngine::participant(int s) {
  Simulator& sim = *sims_[static_cast<std::size_t>(s)];
  for (;;) {
    switch (phase_) {
      case Phase::kRun:
        sim.run_until(win_deadline_);
        break;
      case Phase::kRunKey:
        sim.run_until_key(key_t_, key_prio_);
        break;
      case Phase::kStop:
        return;
    }
    // Barrier 1: every shard has finished the window and published its
    // outgoing lanes. Each shard then merges its own incoming lanes.
    barrier_.arrive_and_wait([] {});
    merge_lanes_into(s);
    // Barrier 2: heaps are whole again; the last arriver plans the next
    // window (and executes any due global events) while the rest wait.
    barrier_.arrive_and_wait([this] { plan(); });
  }
}

void ShardedEngine::merge_lanes_into(int dst) {
  Simulator& sim = *sims_[static_cast<std::size_t>(dst)];
  for (int src = 0; src < num_shards_; ++src) {
    if (src == dst) continue;
    Lane& lane = lanes_[static_cast<std::size_t>(src) *
                            static_cast<std::size_t>(num_shards_) +
                        static_cast<std::size_t>(dst)];
    for (const Simulator::Event& e : lane.events) sim.push_event(e);
    lane.events.clear();
  }
}

void ShardedEngine::plan() {
  {
    std::lock_guard<std::mutex> lock(global_mu_);
    for (const Simulator::Event& e : global_inbox_) globals_.insert(e);
    global_inbox_.clear();
  }
  for (;;) {
    // Earliest pending key across the shard heaps. This is exact, not a
    // bound: all heaps are quiescent and all lanes merged, so nothing
    // below it can still appear.
    bool have_min = false;
    Time tmin = 0;
    std::uint64_t pmin = 0;
    for (const auto& sim : sims_) {
      Time t;
      std::uint64_t p;
      if (!sim->peek(&t, &p)) continue;
      if (!have_min || t < tmin || (t == tmin && p < pmin)) {
        have_min = true;
        tmin = t;
        pmin = p;
      }
    }
    // A global strictly below every pending shard event executes now,
    // single-threaded on the control simulator; it may schedule into
    // shards or queue further globals, so re-plan from scratch.
    if (!globals_.empty()) {
      const Simulator::Event g = *globals_.begin();
      if (g.t <= deadline_ &&
          (!have_min || g.t < tmin || (g.t == tmin && g.prio < pmin))) {
        globals_.erase(globals_.begin());
        control_.dispatch_external(g);
        continue;
      }
    }
    if (!have_min || tmin > deadline_) {
      // Done: park every clock at the deadline, exactly like the serial
      // engine's run_until (heaps are quiescent — safe to touch here).
      for (const auto& sim : sims_) sim->run_until(deadline_);
      control_.run_until(deadline_);
      phase_ = Phase::kStop;
      return;
    }
    // Next window [tmin, end): any lane arrival produced inside lands at
    // >= tmin + lookahead >= end, so no shard can receive an event below
    // its execution front.
    Time end = tmin + lookahead_;
    if (end > deadline_) end = deadline_ + 1;  // run_until is inclusive
    lane_floor_ = tmin + lookahead_;
    if (!globals_.empty() && globals_.begin()->t < end) {
      // A global falls inside the window: shards run strictly below its
      // key, then it executes at its exact serial position.
      phase_ = Phase::kRunKey;
      key_t_ = globals_.begin()->t;
      key_prio_ = globals_.begin()->prio;
    } else {
      phase_ = Phase::kRun;
      win_deadline_ = end - 1;
    }
    return;
  }
}

}  // namespace spineless::sim
