#include "sim/sharded_engine.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "util/runner.h"

namespace spineless::sim {
namespace {

// Events dispatched per poll() slice — bounds how long one dense shard can
// monopolize a reactor that also hosts other pollers.
constexpr int kRunBatch = 512;
// Ring entries moved to staging per opportunistic drain.
constexpr std::size_t kDrainBatch = 256;
// Initial ring capacity (power of two). Overflow vectors absorb bursts
// beyond it, and sustained producer-overflow pressure grows a lane's ring
// geometrically (doubling at quiescent run_until boundaries) up to
// kMaxRingCapacity — the micro scenario used to pin max_ring_occupancy at
// the old fixed 1024 with every burst spilling to overflow.
constexpr std::size_t kRingCapacity = 1024;
constexpr std::size_t kMaxRingCapacity = 65536;
// Full no-progress reactor passes before yielding the OS thread.
constexpr int kSpinPasses = 64;

int resolve_reactors(int requested, int shards) {
  int r = requested;
  if (r <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    r = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (r > shards) r = shards;
  if (r < 1) r = 1;
  return r;
}

// Best-effort reactor->core pinning (NetworkConfig::pin_reactors). Purely a
// performance hint: affinity never reaches event order, so pinned and
// unpinned runs are byte-identical. No-op off Linux or on 1-core hosts.
void pin_to_core(std::thread::native_handle_type handle, int reactor) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(reactor) % hw, &set);
  pthread_setaffinity_np(handle, sizeof(set), &set);  // failure = unpinned
#else
  (void)handle;
  (void)reactor;
#endif
}

}  // namespace

ShardedEngine::ShardedEngine(Network& net)
    : net_(net),
      num_shards_(net.num_shards()),
      num_reactors_(
          resolve_reactors(net.config().reactor_threads, net.num_shards())),
      lookahead_(net.config().link_delay),
      slots_(static_cast<std::size_t>(net.num_shards())),
      reactor_stats_(static_cast<std::size_t>(num_reactors_)) {
  SPINELESS_CHECK_MSG(lookahead_ > 0,
                      "sharded engine needs a positive link delay lookahead");
  const std::size_t k = static_cast<std::size_t>(num_shards_);
  pollers_.reserve(k);
  for (int s = 0; s < num_shards_; ++s) {
    auto p = std::make_unique<Poller>();
    p->s = s;
    p->sim = std::make_unique<Simulator>();
    p->sim->set_shard_context(this, s);
    p->overflow.resize(k);
    p->overflow_head.assign(k, 0);
    p->overflow_pressure.assign(k, 0);
    p->in.resize(k);
    pollers_.push_back(std::move(p));
  }
  control_.set_shard_context(this, Simulator::kControlShard);
  rings_.resize(k * k);
  for (int src = 0; src < num_shards_; ++src) {
    for (int dst = 0; dst < num_shards_; ++dst) {
      if (src == dst) continue;
      rings_[static_cast<std::size_t>(src) * k + static_cast<std::size_t>(dst)] =
          std::make_unique<Ring>(kRingCapacity);
    }
  }
  threads_.reserve(static_cast<std::size_t>(num_reactors_ - 1));
  for (int r = 1; r < num_reactors_; ++r)
    threads_.emplace_back([this, r] { worker_main(r); });
  if (net.config().pin_reactors) {
#if defined(__linux__)
    pin_to_core(pthread_self(), /*reactor=*/0);  // reactor 0 is the caller
#endif
    for (int r = 1; r < num_reactors_; ++r)
      pin_to_core(threads_[static_cast<std::size_t>(r - 1)].native_handle(),
                  r);
  }
}

ShardedEngine::~ShardedEngine() {
  quit_.store(true, std::memory_order_release);
  run_gen_.fetch_add(1, std::memory_order_acq_rel);
  run_gen_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardedEngine::post(std::int32_t src_shard, std::int32_t dst_shard,
                         const RoutedEvent& e) {
  const Simulator::Event ev{e.t, e.prio, e.sink, e.ctx};
  if (src_shard == Simulator::kControlShard) {
    // Setup or a global event: every shard is quiescent, push directly.
    pollers_[static_cast<std::size_t>(dst_shard)]->sim->push_event(ev);
    return;
  }
  // Mid-window handoff: the propagation delay guarantees the event lies at
  // or beyond the window's lookahead horizon, so merging it at the next
  // epoch boundary cannot be late.
  Poller& p = *pollers_[static_cast<std::size_t>(src_shard)];
  SPINELESS_DCHECK(e.t >= p.lane_floor);
  ++p.handoffs;
  lane_push(p, dst_shard, ev);
}

void ShardedEngine::post_global(std::int32_t src_shard, const RoutedEvent& e) {
  const Simulator::Event ev{e.t, e.prio, e.sink, e.ctx};
  if (src_shard == Simulator::kControlShard) {
    globals_.insert(ev);
    return;
  }
  // A shard scheduling a global mid-window must respect the same lookahead
  // horizon as lane traffic — other shards may already run up to it. The
  // epoch tag makes every shard's decision at epoch e fold the identical
  // global set: a post tagged e happens-before the poster's produced = e,
  // which every decider at e has acquired.
  const Poller& p = *pollers_[static_cast<std::size_t>(src_shard)];
  SPINELESS_DCHECK(e.t >= p.lane_floor);
  std::lock_guard<std::mutex> lock(global_mu_);
  global_inbox_.push_back(GlobalPost{ev, p.epoch});
  inbox_count_.store(global_inbox_.size(), std::memory_order_release);
}

std::vector<Simulator::Event> ShardedEngine::pending_globals() const {
  SPINELESS_CHECK(global_inbox_.empty());  // quiescent boundary only
  return {globals_.begin(), globals_.end()};
}

void ShardedEngine::restore_globals(
    const std::vector<Simulator::Event>& events) {
  SPINELESS_CHECK(global_inbox_.empty());
  globals_.clear();
  for (const Simulator::Event& e : events) globals_.insert(e);
}

std::uint64_t ShardedEngine::events_processed() const {
  std::uint64_t n = control_.events_processed();
  for (const auto& p : pollers_) n += p->sim->events_processed();
  return n;
}

ShardedEngine::Metrics ShardedEngine::metrics() const {
  Metrics m;
  m.central_plans = central_plans_;
  m.ring_growths = ring_growths_;
  m.max_ring_occupancy = retired_ring_occupancy_;
  if (!pollers_.empty()) m.windows = pollers_[0]->windows;
  for (const auto& p : pollers_) m.ring_handoffs += p->handoffs;
  for (const auto& r : rings_) {
    if (r == nullptr) continue;
    if (r->max_occupancy() > m.max_ring_occupancy)
      m.max_ring_occupancy = r->max_occupancy();
    if (r->capacity() > m.ring_capacity) m.ring_capacity = r->capacity();
  }
  for (const ReactorStats& rs : reactor_stats_) m.spin_waits += rs.spins;
  return m;
}

void ShardedEngine::grow_pressured_rings() {
  for (int src = 0; src < num_shards_; ++src) {
    Poller& p = *pollers_[static_cast<std::size_t>(src)];
    for (int dst = 0; dst < num_shards_; ++dst) {
      if (dst == src) continue;
      std::uint64_t& pressure =
          p.overflow_pressure[static_cast<std::size_t>(dst)];
      if (pressure == 0) continue;
      pressure = 0;
      auto& slot = rings_[static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(num_shards_) +
                          static_cast<std::size_t>(dst)];
      const std::size_t cap = slot->capacity();
      if (cap >= kMaxRingCapacity) continue;
      // Empty between rounds (every producer flushed, every consumer
      // merged), so the swap cannot lose or reorder events.
      SPINELESS_DCHECK(slot->empty());
      if (slot->max_occupancy() > retired_ring_occupancy_)
        retired_ring_occupancy_ = slot->max_occupancy();
      slot = std::make_unique<Ring>(cap * 2);
      ++ring_growths_;
    }
  }
}

void ShardedEngine::run_until(Time deadline) {
  SPINELESS_DCHECK(deadline >= deadline_);
  deadline_ = deadline;
  grow_pressured_rings();
  plan();
  if (plan_.phase == Phase::kStop) return;  // nothing due: clocks parked
  for (const auto& p : pollers_) adopt_plan(*p);
  done_count_.store(0, std::memory_order_relaxed);
  run_gen_.fetch_add(1, std::memory_order_acq_rel);
  run_gen_.notify_all();
  reactor_main(/*reactor=*/0);
  // Wait for every worker to leave the round before returning: a repeated
  // run_until re-plans on this thread, and that write to the plan state
  // must not race a worker's final poll.
  // NOLINTNEXTLINE(spineless-atomic-spin): each miss parks in the futex-backed atomic wait until a worker notifies — not a busy spin
  while (done_count_.load(std::memory_order_acquire) != num_reactors_ - 1)
    done_count_.wait(done_count_.load(std::memory_order_acquire));
}

void ShardedEngine::worker_main(int reactor) {
  util::ParallelRegion region;
  std::uint64_t seen = 0;
  for (;;) {
    // NOLINTNEXTLINE(spineless-atomic-spin): round gate — workers park in the futex-backed atomic wait between run_until calls, not a busy spin
    while (run_gen_.load(std::memory_order_acquire) == seen) run_gen_.wait(seen);
    seen = run_gen_.load(std::memory_order_acquire);
    if (quit_.load(std::memory_order_acquire)) return;
    reactor_main(reactor);
    done_count_.fetch_add(1, std::memory_order_acq_rel);
    done_count_.notify_all();
  }
}

void ShardedEngine::reactor_main(int reactor) {
  // This reactor round-robins its contiguous block of pollers. Every
  // poll() is non-blocking, so a reactor hosting several shards (fewer
  // cores than shards — notably R = 1 on a single-core host) interleaves
  // them cooperatively: a poller waiting on a peer simply returns and the
  // peer runs next, with no context switch and no futex.
  const int begin = reactor * num_shards_ / num_reactors_;
  const int end = (reactor + 1) * num_shards_ / num_reactors_;
  ReactorStats& stats = reactor_stats_[static_cast<std::size_t>(reactor)];
  int idle = 0;
  for (;;) {
    bool progress = false;
    bool alive = false;
    for (int s = begin; s < end; ++s) {
      Poller& p = *pollers_[static_cast<std::size_t>(s)];
      if (p.st == PState::kStopped) continue;
      alive = true;
      if (poll(p)) progress = true;
    }
    if (!alive) return;
    if (progress) {
      idle = 0;
      continue;
    }
    // Spin-then-yield: peers on other reactors owe us a handshake.
    ++stats.spins;
    if (++idle >= kSpinPasses) {
      std::this_thread::yield();
      idle = 0;
    }
  }
}

bool ShardedEngine::poll(Poller& p) {
  switch (p.st) {
    case PState::kRun: {
      // Opportunistic ring drain (to staging only) keeps remote producers'
      // rings from backing up while we execute.
      drain_rings(p, kDrainBatch);
      const bool more =
          p.phase == Phase::kRunKey
              ? p.sim->run_until_key_bounded(p.key_t, p.key_prio, kRunBatch)
              : p.sim->run_until_bounded(p.win_deadline, kRunBatch);
      if (more) return true;  // budget exhausted; resume next poll
      if (!p.sentinels_sent) {
        // Epoch boundary marker per outgoing lane: everything this window
        // produced for dst precedes it in FIFO order.
        const Simulator::Event sentinel{0, p.epoch, nullptr, p.epoch};
        for (int dst = 0; dst < num_shards_; ++dst)
          if (dst != p.s) lane_push(p, dst, sentinel);
        p.sentinels_sent = true;
      }
      p.st = PState::kFlush;
      [[fallthrough]];
    }
    case PState::kFlush: {
      if (!flush_overflow(p)) {
        drain_rings(p, kDrainBatch);
        return false;  // a consumer is behind; its poller runs next
      }
      slots_[static_cast<std::size_t>(p.s)].produced.store(
          p.epoch, std::memory_order_release);
      p.st = PState::kMergeDecide;
      [[fallthrough]];
    }
    case PState::kMergeDecide: {
      for (int j = 0; j < num_shards_; ++j) {
        if (slots_[static_cast<std::size_t>(j)].produced.load(
                std::memory_order_acquire) < p.epoch) {
          drain_rings(p, kDrainBatch);
          return false;
        }
      }
      merge_epoch(p);
      publish_min(p);
      decide_fast(p);
      if (p.st != PState::kAwaitMerged) return true;  // stepped into kRun
      [[fallthrough]];
    }
    case PState::kAwaitMerged: {
      for (int j = 0; j < num_shards_; ++j) {
        if (slots_[static_cast<std::size_t>(j)].merged.load(
                std::memory_order_acquire) < p.epoch)
          return false;
      }
      decide_slow(p);
      return true;
    }
    case PState::kAwaitPlan: {
      if (plan_gen_.load(std::memory_order_acquire) == p.plan_seen)
        return false;
      adopt_plan(p);
      return true;
    }
    case PState::kStopped:
      return false;
  }
  return false;
}

void ShardedEngine::lane_push(Poller& p, int dst, const Simulator::Event& e) {
  std::vector<Simulator::Event>& ovf =
      p.overflow[static_cast<std::size_t>(dst)];
  // A full ring never blocks: order is preserved by routing every push
  // through the overflow once it is non-empty. Every parked event counts as
  // growth pressure on the lane (read at the next quiescent boundary).
  if (!ovf.empty() || !ring(p.s, dst).try_push(e)) {
    ovf.push_back(e);
    ++p.overflow_pressure[static_cast<std::size_t>(dst)];
  }
}

bool ShardedEngine::flush_overflow(Poller& p) {
  bool all = true;
  for (int dst = 0; dst < num_shards_; ++dst) {
    std::vector<Simulator::Event>& ovf =
        p.overflow[static_cast<std::size_t>(dst)];
    if (ovf.empty()) continue;
    std::size_t& head = p.overflow_head[static_cast<std::size_t>(dst)];
    Ring& r = ring(p.s, dst);
    while (head < ovf.size() && r.try_push(ovf[head])) ++head;
    if (head == ovf.size()) {
      ovf.clear();
      head = 0;
    } else {
      all = false;
    }
  }
  return all;
}

std::size_t ShardedEngine::drain_rings(Poller& p, std::size_t max) {
  std::size_t n = 0;
  for (int src = 0; src < num_shards_; ++src) {
    if (src == p.s) continue;
    Stage& stg = p.in[static_cast<std::size_t>(src)];
    n += ring(src, p.s).drain(max, [&stg](const Simulator::Event& e) {
      stg.events.push_back(e);
    });
  }
  return n;
}

void ShardedEngine::merge_epoch(Poller& p) {
  // Deterministic merge: fixed source order, each lane consumed exactly up
  // to this epoch's sentinel. Which events land in the heap at epoch e is
  // therefore a pure function of the event streams — independent of when
  // the opportunistic drains ran or how far ahead a producer raced.
  for (int src = 0; src < num_shards_; ++src) {
    if (src == p.s) continue;
    Stage& stg = p.in[static_cast<std::size_t>(src)];
    Ring& r = ring(src, p.s);
    // produced >= epoch was acquired: everything this epoch needs —
    // including the sentinel — is already in the ring. Pull it all.
    while (r.drain(kDrainBatch, [&stg](const Simulator::Event& e) {
             stg.events.push_back(e);
           }) != 0) {
    }
    for (;;) {
      SPINELESS_DCHECK(stg.head < stg.events.size());
      const Simulator::Event e = stg.events[stg.head++];
      if (is_sentinel(e)) {
        SPINELESS_DCHECK(e.ctx == p.epoch);
        break;
      }
      p.sim->push_event(e);
    }
    if (stg.head == stg.events.size()) {
      stg.events.clear();
      stg.head = 0;
    } else if (stg.head > 1024) {
      stg.events.erase(stg.events.begin(),
                       stg.events.begin() +
                           static_cast<std::ptrdiff_t>(stg.head));
      stg.head = 0;
    }
  }
}

void ShardedEngine::publish_min(Poller& p) {
  Slot& sl = slots_[static_cast<std::size_t>(p.s)];
  Time t = 0;
  std::uint64_t prio = 0;
  sl.has_min = p.sim->peek(&t, &prio);
  sl.min_t = t;
  sl.min_prio = prio;
  sl.merged.store(p.epoch, std::memory_order_release);
}

ShardedEngine::GKey ShardedEngine::effective_global(std::uint64_t epoch) {
  GKey g;
  if (plan_.g_valid) {
    g.valid = true;
    g.t = plan_.g_t;
    g.prio = plan_.g_prio;
  }
  if (inbox_count_.load(std::memory_order_acquire) != 0) {
    std::lock_guard<std::mutex> lock(global_mu_);
    for (const GlobalPost& gp : global_inbox_) {
      // Posts tagged beyond our epoch cannot be due before the windows we
      // may still decide locally (their time is beyond the poster's lane
      // floor); ignoring them keeps the epoch-e view identical everywhere.
      if (gp.epoch > epoch) continue;
      if (!g.valid || gp.ev.t < g.t ||
          (gp.ev.t == g.t && gp.ev.prio < g.prio)) {
        g.valid = true;
        g.t = gp.ev.t;
        g.prio = gp.ev.prio;
      }
    }
  }
  return g;
}

void ShardedEngine::decide_fast(Poller& p) {
  // Fixed-step fast path: after epoch e's merge the next window is
  // [X, min(X + lookahead, deadline + 1)) with X = end of the window just
  // run — every event below X is executed and every in-flight arrival is
  // at or beyond X + lookahead >= the new end, so the step is safe without
  // reading any other shard's minimum. It is taken iff our own heap has
  // work inside it and no global interferes; both inputs are deterministic
  // and shared, so either every shard whose heap is busy steps into the
  // same window, or (see decide_slow) idle shards mirror it exactly.
  const Time x = p.x_next;
  Time end = x + lookahead_;
  if (end > deadline_ + 1) end = deadline_ + 1;
  const GKey g = effective_global(p.epoch);
  const bool due_g = g.valid && g.t <= deadline_ && g.t < x + lookahead_;
  const Slot& me = slots_[static_cast<std::size_t>(p.s)];
  if (!p.force_slow && !due_g && me.has_min && me.min_t < end) {
    adopt_window(p, Phase::kRun, /*win_deadline=*/end - 1, /*key_t=*/0,
                 /*key_prio=*/0, /*lane_floor=*/x + lookahead_,
                 /*x_next=*/end, /*force_slow=*/false);
    return;
  }
  p.st = PState::kAwaitMerged;
}

void ShardedEngine::decide_slow(Poller& p) {
  // All merged >= epoch: the published minima are exactly the epoch-e
  // values (a shard can only overwrite its slot after *we* produce the
  // next epoch), so every shard reaching this point folds the identical
  // global minimum and takes the identical branch.
  bool have = false;
  Time tmin = 0;
  std::uint64_t pmin = 0;
  for (int j = 0; j < num_shards_; ++j) {
    const Slot& sl = slots_[static_cast<std::size_t>(j)];
    if (!sl.has_min) continue;
    if (!have || sl.min_t < tmin || (sl.min_t == tmin && sl.min_prio < pmin)) {
      have = true;
      tmin = sl.min_t;
      pmin = sl.min_prio;
    }
  }
  const Time x = p.x_next;
  Time step_end = x + lookahead_;
  if (step_end > deadline_ + 1) step_end = deadline_ + 1;
  const GKey g = effective_global(p.epoch);
  const bool due_g = g.valid && g.t <= deadline_ && g.t < x + lookahead_;
  if (!p.force_slow && !due_g && have && tmin < step_end) {
    // Some shard was busy and already stepped (its minimum is inside the
    // step window); mirror its window so the epoch sequence stays global.
    adopt_window(p, Phase::kRun, step_end - 1, 0, 0, x + lookahead_, step_end,
                 false);
    return;
  }
  // From here no shard stepped (a busy shard's minimum would have made the
  // mirror branch fire), so a centralized or jumped window is consistent.
  const bool g_first =
      g.valid && g.t <= deadline_ &&
      (!have || g.t < tmin || (g.t == tmin && g.prio < pmin));
  if (g_first || !have || tmin > deadline_) {
    arrive_central(p);
    return;
  }
  // Jump: restart the fixed stepping at the exact global minimum. This is
  // what keeps sparse phases (reconvergence gaps, retransmission timeouts)
  // at O(1) windows per event cluster instead of creeping lookahead-sized
  // steps across the gap.
  Time end = tmin + lookahead_;
  if (end > deadline_) end = deadline_ + 1;  // run_until is inclusive
  if (g.valid && g.t < end) {
    // A global falls inside the window: shards run strictly below its key,
    // then rendezvous so it executes at its exact serial position.
    adopt_window(p, Phase::kRunKey, 0, g.t, g.prio, tmin + lookahead_,
                 /*x_next=*/tmin, /*force_slow=*/true);
  } else {
    adopt_window(p, Phase::kRun, end - 1, 0, 0, tmin + lookahead_,
                 /*x_next=*/end, /*force_slow=*/false);
  }
}

void ShardedEngine::arrive_central(Poller& p) {
  if (central_arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      num_shards_) {
    // Last arriver: every other shard is parked with a quiescent, fully
    // merged heap, so the plan may touch all of them single-threaded.
    central_arrived_.store(0, std::memory_order_relaxed);
    plan();
    adopt_plan(p);
  } else {
    p.st = PState::kAwaitPlan;
  }
}

void ShardedEngine::adopt_plan(Poller& p) {
  p.plan_seen = plan_gen_.load(std::memory_order_relaxed);
  if (plan_.phase == Phase::kStop) {
    p.st = PState::kStopped;
    return;
  }
  adopt_window(p, plan_.phase, plan_.win_deadline, plan_.key_t, plan_.key_prio,
               plan_.lane_floor, plan_.x_next,
               /*force_slow=*/plan_.phase == Phase::kRunKey);
}

void ShardedEngine::adopt_window(Poller& p, Phase phase, Time win_deadline,
                                 Time key_t, std::uint64_t key_prio,
                                 Time lane_floor, Time x_next,
                                 bool force_slow) {
  p.phase = phase;
  p.win_deadline = win_deadline;
  p.key_t = key_t;
  p.key_prio = key_prio;
  p.lane_floor = lane_floor;
  p.x_next = x_next;
  p.force_slow = force_slow;
  p.sentinels_sent = false;
  ++p.epoch;
  ++p.windows;
  p.st = PState::kRun;
}

void ShardedEngine::plan() {
  ++central_plans_;
  {
    std::lock_guard<std::mutex> lock(global_mu_);
    for (const GlobalPost& gp : global_inbox_) globals_.insert(gp.ev);
    global_inbox_.clear();
    inbox_count_.store(0, std::memory_order_relaxed);
  }
  for (;;) {
    // Earliest pending key across the shard heaps. This is exact, not a
    // bound: all heaps are quiescent, every ring and staging buffer is
    // fully merged, so nothing below it can still appear.
    bool have_min = false;
    Time tmin = 0;
    std::uint64_t pmin = 0;
    for (const auto& p : pollers_) {
      Time t;
      std::uint64_t pr;
      if (!p->sim->peek(&t, &pr)) continue;
      if (!have_min || t < tmin || (t == tmin && pr < pmin)) {
        have_min = true;
        tmin = t;
        pmin = pr;
      }
    }
    // A global strictly below every pending shard event executes now,
    // single-threaded on the control simulator; it may schedule into
    // shards or queue further globals, so re-plan from scratch.
    if (!globals_.empty()) {
      const Simulator::Event g = *globals_.begin();
      if (g.t <= deadline_ &&
          (!have_min || g.t < tmin || (g.t == tmin && g.prio < pmin))) {
        globals_.erase(globals_.begin());
        control_.dispatch_external(g);
        continue;
      }
    }
    if (!have_min || tmin > deadline_) {
      // Done: park every clock at the deadline, exactly like the serial
      // engine's run_until (heaps are quiescent — safe to touch here).
      for (const auto& p : pollers_) p->sim->run_until(deadline_);
      control_.run_until(deadline_);
      plan_.phase = Phase::kStop;
      break;
    }
    // Next window [tmin, end): any arrival produced inside lands at
    // >= tmin + lookahead >= end, so no shard can receive an event below
    // its execution front.
    Time end = tmin + lookahead_;
    if (end > deadline_) end = deadline_ + 1;  // run_until is inclusive
    plan_.lane_floor = tmin + lookahead_;
    if (!globals_.empty() && globals_.begin()->t < end) {
      // A global falls inside the window: shards run strictly below its
      // key, then it executes at its exact serial position.
      plan_.phase = Phase::kRunKey;
      plan_.key_t = globals_.begin()->t;
      plan_.key_prio = globals_.begin()->prio;
      plan_.x_next = tmin;
    } else {
      plan_.phase = Phase::kRun;
      plan_.win_deadline = end - 1;
      plan_.x_next = end;
    }
    break;
  }
  // Snapshot the earliest still-pending global: between central plans this
  // plus the epoch-tagged inbox is every shard's view of "the next global".
  plan_.g_valid = !globals_.empty();
  if (plan_.g_valid) {
    plan_.g_t = globals_.begin()->t;
    plan_.g_prio = globals_.begin()->prio;
  }
  plan_gen_.fetch_add(1, std::memory_order_release);
}

}  // namespace spineless::sim
