#include "sim/monitor.h"

#include <algorithm>
#include <sstream>

namespace spineless::sim {

void QueueMonitor::start(Simulator& sim, Time from, Time until) {
  SPINELESS_CHECK(until > from);
  until_ = until;
  sim.schedule_at(from, this, 0);
}

void QueueMonitor::on_event(Simulator& sim, std::uint64_t /*ctx*/) {
  Sample s;
  s.t = sim.now();
  // Network exposes per-link occupancy through the Link objects; walk them
  // via the utilization API's sibling: occupancy is queued_bytes() now.
  // (QueueMonitor is a friend-free observer: Network lends the counts.)
  const auto occupancy = net_.queue_occupancy();
  for (const auto bytes : occupancy) {
    s.total_bytes += bytes;
    s.max_bytes = std::max(s.max_bytes, bytes);
  }
  samples_.push_back(s);
  if (sim.now() + interval_ <= until_) sim.schedule_after(interval_, this, 0);
}

void QueueMonitor::save_state(SnapshotWriter& w) const {
  w.i64(until_);
  w.u64(samples_.size());
  for (const Sample& s : samples_) {
    w.i64(s.t);
    w.i64(s.total_bytes);
    w.i64(s.max_bytes);
  }
}

void QueueMonitor::load_state(SnapshotReader& r) {
  until_ = r.i64();
  samples_.resize(r.u64());
  for (Sample& s : samples_) {
    s.t = r.i64();
    s.total_bytes = r.i64();
    s.max_bytes = r.i64();
  }
}

Summary QueueMonitor::max_queue_pkts() const {
  Summary s;
  for (const auto& sample : samples_)
    s.add(static_cast<double>(sample.max_bytes) / kDataPacketBytes);
  return s;
}

double QueueMonitor::mean_total_bytes() const {
  if (samples_.empty()) return 0;
  double acc = 0;
  for (const auto& s : samples_) acc += static_cast<double>(s.total_bytes);
  return acc / static_cast<double>(samples_.size());
}

std::string QueueMonitor::to_csv() const {
  std::ostringstream os;
  os << "t_ps,total_bytes,max_bytes\n";
  for (const auto& s : samples_)
    os << s.t << ',' << s.total_bytes << ',' << s.max_bytes << "\n";
  return os.str();
}

}  // namespace spineless::sim
