// MPTCP-style multipath striping over source-routed path sets — the
// Jellyfish/Xpander transport recipe (§2: "MPTCP with k-shortest path
// routing") that the paper argues is a deployment hurdle. Modeled as j
// independent TCP subflows, each pinned to one path from the flow's path
// set; the striped flow completes when its last subflow completes.
#pragma once

#include <vector>

#include "routing/types.h"
#include "sim/tcp.h"

namespace spineless::sim {

class StripedFlowDriver {
 public:
  // The Network must be in RoutingMode::kSourceRouted.
  StripedFlowDriver(Network& net, const TcpConfig& cfg)
      : net_(net), driver_(net, cfg) {
    SPINELESS_CHECK(net.config().mode == RoutingMode::kSourceRouted);
  }

  // Splits `bytes` evenly over min(subflows, paths.size()) subflows, each
  // source-routed along its own path (round-robin over `paths`, which must
  // run ToR(src) .. ToR(dst)). Returns the striped-flow id.
  int add_flow(Simulator& sim, topo::HostId src, topo::HostId dst,
               std::int64_t bytes, Time start,
               const routing::PathSet& paths, int subflows);

  std::size_t num_flows() const noexcept { return groups_.size(); }
  std::size_t completed_flows() const;
  // FCT per completed striped flow (last subflow finish - start), ms.
  Summary fct_ms() const;

 private:
  struct Group {
    std::vector<std::size_t> members;  // subflow indices in driver_
    Time start = 0;
  };

  Network& net_;
  FlowDriver driver_;
  std::vector<Group> groups_;
};

}  // namespace spineless::sim
