#include "sim/incast_driver.h"

#include <algorithm>

namespace spineless::sim {

int IncastDriver::add_query(Simulator& sim, const workload::IncastQuery& q) {
  SPINELESS_CHECK(!q.workers.empty());
  Group group;
  group.start = q.start;
  for (const topo::HostId w : q.workers) {
    const auto id =
        driver_.add_flow(sim, w, q.aggregator, q.response_bytes, q.start);
    group.members.push_back(static_cast<std::size_t>(id));
  }
  groups_.push_back(std::move(group));
  return static_cast<int>(groups_.size()) - 1;
}

std::size_t IncastDriver::completed_queries() const {
  std::size_t done = 0;
  for (const Group& g : groups_) {
    done += std::all_of(g.members.begin(), g.members.end(),
                        [this](std::size_t m) {
                          return driver_.flow(m).record().completed();
                        });
  }
  return done;
}

Summary IncastDriver::qct_ms() const {
  Summary s;
  for (const Group& g : groups_) {
    Time last = -1;
    bool all = true;
    for (std::size_t m : g.members) {
      const auto& rec = driver_.flow(m).record();
      if (!rec.completed()) {
        all = false;
        break;
      }
      last = std::max(last, rec.finish);
    }
    if (all) s.add(units::to_millis(last - g.start));
  }
  return s;
}

}  // namespace spineless::sim
