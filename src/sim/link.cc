#include "sim/link.h"

#include <algorithm>

#include "sim/checkpoint.h"

namespace spineless::sim {

void Link::enqueue(Simulator& sim, const Packet& pkt) {
  if (down_ || queued_bytes_ + pkt.size_bytes > queue_capacity_) {
    if (down_ && pkt.flow_id >= 0) ++stats_.down_drops;
    ++stats_.drops;
    return;
  }
  enqueue_node(sim, pool_->alloc(pkt));
}

void Link::enqueue_node(Simulator& sim, PacketNode* node) {
  if (down_ || queued_bytes_ + node->pkt.size_bytes > queue_capacity_) {
    if (down_ && node->pkt.flow_id >= 0) ++stats_.down_drops;
    ++stats_.drops;
    pool_->release(node);
    return;
  }
  if (gray_ != nullptr) {
    // One draw per packet regardless of outcome keeps the stream aligned
    // across drop/corrupt/pass decisions.
    const double u = gray_->rng.uniform_real();
    if (u < gray_->drop_prob) {
      if (node->pkt.flow_id >= 0) ++stats_.gray_drops;
      ++stats_.drops;
      pool_->release(node);
      return;
    }
    if (u < gray_->drop_prob + gray_->corrupt_prob && !node->pkt.corrupted) {
      node->pkt.corrupted = true;
      ++stats_.corrupt_marks;
    }
  }
  if (ecn_threshold_ > 0 && queued_bytes_ >= ecn_threshold_) {
    node->pkt.ecn_ce = true;
    ++stats_.ecn_marks;
  }
  node->next = nullptr;
  if (tail_ == nullptr) {
    head_ = tail_ = node;
  } else {
    tail_->next = node;
    tail_ = node;
  }
  queued_bytes_ += node->pkt.size_bytes;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  if (!busy_) start_tx(sim);
}

void Link::set_gray(double drop_prob, double corrupt_prob,
                    std::uint64_t seed) {
  SPINELESS_CHECK(drop_prob >= 0 && corrupt_prob >= 0 &&
                  drop_prob + corrupt_prob <= 1.0);
  gray_ = std::make_unique<GrayState>();
  gray_->drop_prob = drop_prob;
  gray_->corrupt_prob = corrupt_prob;
  gray_->rng.reseed(seed);
}

void Link::set_rate_factor(double factor) {
  SPINELESS_CHECK(factor > 0 && factor <= 1.0);
  rate_bps_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(base_rate_bps_) *
                                   factor));
  memo_size_ = -1;  // re-derive serialization time at the new rate
}

void Link::start_tx(Simulator& sim) {
  SPINELESS_DCHECK(head_ != nullptr);
  busy_ = true;
  const std::int64_t size = head_->pkt.size_bytes;
  if (size != memo_size_) {
    memo_size_ = size;
    memo_time_ = units::serialization_time(size, rate_bps_);
  }
  sim.schedule_after(memo_time_, this, /*ctx=*/0);
}

void Link::on_event(Simulator& sim, std::uint64_t) {
  // Head packet fully serialized: launch it down the wire. The node
  // itself rides the propagation event to the peer device, which then
  // owns it; arrivals stay FIFO because serialization completes in order
  // and the delay is constant.
  PacketNode* node = head_;
  head_ = node->next;
  if (head_ == nullptr) tail_ = nullptr;
  node->next = nullptr;
  queued_bytes_ -= node->pkt.size_bytes;
  ++stats_.packets_tx;
  stats_.bytes_tx += node->pkt.size_bytes;
  sim.schedule_after(prop_delay_, peer_,
                     reinterpret_cast<std::uint64_t>(node));
  if (head_ != nullptr)
    start_tx(sim);
  else
    busy_ = false;
}

void Link::save_state(SnapshotWriter& w, const PacketCodec& codec) const {
  // Queue contents in FIFO order (head first).
  std::uint64_t n = 0;
  for (const PacketNode* p = head_; p != nullptr; p = p->next) ++n;
  w.u64(n);
  for (const PacketNode* p = head_; p != nullptr; p = p->next)
    codec.write(w, p->pkt);
  w.i64(queued_bytes_);
  w.u8(busy_ ? 1 : 0);
  w.u8(down_ ? 1 : 0);
  w.i64(rate_bps_);  // may be degraded below base_rate_bps_
  w.u8(gray_ != nullptr ? 1 : 0);
  if (gray_ != nullptr) {
    w.f64(gray_->drop_prob);
    w.f64(gray_->corrupt_prob);
    w.rng_state(gray_->rng.state());  // mid-stream, NOT the seed
  }
  w.i64(stats_.packets_tx);
  w.i64(stats_.bytes_tx);
  w.i64(stats_.drops);
  w.i64(stats_.ecn_marks);
  w.i64(stats_.max_queue_bytes);
  w.i64(stats_.down_drops);
  w.i64(stats_.gray_drops);
  w.i64(stats_.corrupt_marks);
}

void Link::load_state(SnapshotReader& r, const PacketCodec& codec) {
  SPINELESS_CHECK(head_ == nullptr && tail_ == nullptr);
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    PacketNode* node = pool_->alloc(codec.read(r));
    node->next = nullptr;
    if (tail_ == nullptr) {
      head_ = tail_ = node;
    } else {
      tail_->next = node;
      tail_ = node;
    }
  }
  queued_bytes_ = r.i64();
  busy_ = r.u8() != 0;
  down_ = r.u8() != 0;
  rate_bps_ = r.i64();
  memo_size_ = -1;  // wall-clock-free cache; re-derive lazily
  if (r.u8() != 0) {
    gray_ = std::make_unique<GrayState>();
    gray_->drop_prob = r.f64();
    gray_->corrupt_prob = r.f64();
    gray_->rng.set_state(r.rng_state());
  } else {
    gray_.reset();
  }
  stats_.packets_tx = r.i64();
  stats_.bytes_tx = r.i64();
  stats_.drops = r.i64();
  stats_.ecn_marks = r.i64();
  stats_.max_queue_bytes = r.i64();
  stats_.down_drops = r.i64();
  stats_.gray_drops = r.i64();
  stats_.corrupt_marks = r.i64();
}

Link::QueueAudit Link::audit_queue() const {
  QueueAudit a;
  for (const PacketNode* p = head_; p != nullptr; p = p->next) {
    ++a.nodes;
    a.bytes += p->pkt.size_bytes;
    a.max_hops = std::max(a.max_hops, p->pkt.hops);
  }
  a.bytes_consistent = a.bytes == queued_bytes_ && queued_bytes_ >= 0;
  // An idle link must have an empty FIFO; a busy one must have a head in
  // transmission.
  a.busy_consistent = busy_ == (head_ != nullptr);
  return a;
}

}  // namespace spineless::sim
