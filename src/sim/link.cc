#include "sim/link.h"

#include <algorithm>

namespace spineless::sim {

void Link::enqueue(Simulator& sim, const Packet& pkt) {
  if (down_) {
    ++stats_.drops;
    return;
  }
  if (queued_bytes_ + pkt.size_bytes > queue_capacity_) {
    ++stats_.drops;
    return;
  }
  Packet to_queue = pkt;
  if (ecn_threshold_ > 0 && queued_bytes_ >= ecn_threshold_) {
    to_queue.ecn_ce = true;
    ++stats_.ecn_marks;
  }
  queue_.push_back(to_queue);
  queued_bytes_ += pkt.size_bytes;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  if (!busy_) start_tx(sim);
}

void Link::start_tx(Simulator& sim) {
  SPINELESS_DCHECK(!queue_.empty());
  busy_ = true;
  sim.schedule_after(
      units::serialization_time(queue_.front().size_bytes, rate_bps_), this,
      /*ctx=*/0);
}

void Link::on_event(Simulator& sim, std::uint64_t ctx) {
  if (ctx == 0) {
    // Head packet fully serialized: launch it down the wire.
    Packet pkt = queue_.front();
    queue_.pop_front();
    queued_bytes_ -= pkt.size_bytes;
    ++stats_.packets_tx;
    stats_.bytes_tx += pkt.size_bytes;
    in_flight_.push_back(pkt);
    sim.schedule_after(prop_delay_, this, /*ctx=*/1);
    if (!queue_.empty())
      start_tx(sim);
    else
      busy_ = false;
  } else {
    // Arrival at the peer. Serialization completes in order and the
    // propagation delay is constant, so arrivals are FIFO.
    SPINELESS_DCHECK(!in_flight_.empty());
    Packet pkt = in_flight_.front();
    in_flight_.pop_front();
    peer_->receive(sim, pkt);
  }
}

}  // namespace spineless::sim
