#include "sim/link.h"

#include <algorithm>

namespace spineless::sim {

void Link::enqueue(Simulator& sim, const Packet& pkt) {
  if (down_ || queued_bytes_ + pkt.size_bytes > queue_capacity_) {
    ++stats_.drops;
    return;
  }
  enqueue_node(sim, pool_->alloc(pkt));
}

void Link::enqueue_node(Simulator& sim, PacketNode* node) {
  if (down_ || queued_bytes_ + node->pkt.size_bytes > queue_capacity_) {
    ++stats_.drops;
    pool_->release(node);
    return;
  }
  if (ecn_threshold_ > 0 && queued_bytes_ >= ecn_threshold_) {
    node->pkt.ecn_ce = true;
    ++stats_.ecn_marks;
  }
  node->next = nullptr;
  if (tail_ == nullptr) {
    head_ = tail_ = node;
  } else {
    tail_->next = node;
    tail_ = node;
  }
  queued_bytes_ += node->pkt.size_bytes;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queued_bytes_);
  if (!busy_) start_tx(sim);
}

void Link::start_tx(Simulator& sim) {
  SPINELESS_DCHECK(head_ != nullptr);
  busy_ = true;
  const std::int64_t size = head_->pkt.size_bytes;
  if (size != memo_size_) {
    memo_size_ = size;
    memo_time_ = units::serialization_time(size, rate_bps_);
  }
  sim.schedule_after(memo_time_, this, /*ctx=*/0);
}

void Link::on_event(Simulator& sim, std::uint64_t) {
  // Head packet fully serialized: launch it down the wire. The node
  // itself rides the propagation event to the peer device, which then
  // owns it; arrivals stay FIFO because serialization completes in order
  // and the delay is constant.
  PacketNode* node = head_;
  head_ = node->next;
  if (head_ == nullptr) tail_ = nullptr;
  node->next = nullptr;
  queued_bytes_ -= node->pkt.size_bytes;
  ++stats_.packets_tx;
  stats_.bytes_tx += node->pkt.size_bytes;
  sim.schedule_after(prop_delay_, peer_,
                     reinterpret_cast<std::uint64_t>(node));
  if (head_ != nullptr)
    start_tx(sim);
  else
    busy_ = false;
}

}  // namespace spineless::sim
