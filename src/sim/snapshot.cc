#include "sim/snapshot.h"

#include <cstring>

#include "util/error.h"
#include "util/fsio.h"
#include "util/rng.h"

namespace spineless::sim {
namespace {

constexpr std::size_t kHeaderSize = 8 + 4 + 8;  // magic + version + hash

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void put_u32(std::string* buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string* buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const std::string& buf, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::string& buf, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(buf[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  return v;
}

void overwrite_u64(std::string* buf, std::size_t pos, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    (*buf)[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
}

}  // namespace

HashChain& HashChain::mix(std::uint64_t v) noexcept {
  h_ = splitmix64(h_ ^ v);
  return *this;
}

HashChain& HashChain::mix(const std::string& s) noexcept {
  mix(s.size());
  for (char c : s) h_ = splitmix64(h_ ^ static_cast<unsigned char>(c));
  return *this;
}

SnapshotWriter::SnapshotWriter(std::uint64_t config_hash) {
  buf_.append(kSnapshotMagic, sizeof kSnapshotMagic);
  put_u32(&buf_, kSnapshotVersion);
  put_u64(&buf_, config_hash);
}

void SnapshotWriter::begin_section(std::uint32_t tag) {
  SPINELESS_CHECK(!in_section_);
  in_section_ = true;
  put_u32(&buf_, tag);
  section_len_at_ = buf_.size();
  put_u64(&buf_, 0);  // patched by end_section
}

void SnapshotWriter::end_section() {
  SPINELESS_CHECK(in_section_);
  in_section_ = false;
  overwrite_u64(&buf_, section_len_at_,
                buf_.size() - (section_len_at_ + 8));
}

void SnapshotWriter::u8(std::uint8_t v) {
  SPINELESS_CHECK(in_section_);
  buf_.push_back(static_cast<char>(v));
}

void SnapshotWriter::u32(std::uint32_t v) {
  SPINELESS_CHECK(in_section_);
  put_u32(&buf_, v);
}

void SnapshotWriter::u64(std::uint64_t v) {
  SPINELESS_CHECK(in_section_);
  put_u64(&buf_, v);
}

void SnapshotWriter::i64(std::int64_t v) {
  u64(static_cast<std::uint64_t>(v));
}

void SnapshotWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void SnapshotWriter::str(const std::string& s) {
  u64(s.size());
  SPINELESS_CHECK(in_section_);
  buf_ += s;
}

void SnapshotWriter::rng_state(const std::array<std::uint64_t, 4>& s) {
  for (std::uint64_t w : s) u64(w);
}

std::string SnapshotWriter::seal() const {
  SPINELESS_CHECK(!in_section_);
  std::string out = buf_;
  put_u64(&out, fnv1a(out.data(), out.size()));
  return out;
}

bool SnapshotWriter::write_file(const std::string& path) {
  return util::atomic_write_file(path, seal());
}

SnapshotReader::SnapshotReader(std::string bytes) : bytes_(std::move(bytes)) {
  SPINELESS_CHECK_MSG(bytes_.size() >= kHeaderSize + 8,
                      "snapshot truncated (" << bytes_.size() << " bytes)");
  SPINELESS_CHECK_MSG(
      std::memcmp(bytes_.data(), kSnapshotMagic, sizeof kSnapshotMagic) == 0,
      "not a spineless snapshot (bad magic)");
  payload_end_ = bytes_.size() - 8;
  const std::uint64_t want = get_u64(bytes_, payload_end_);
  const std::uint64_t got = fnv1a(bytes_.data(), payload_end_);
  SPINELESS_CHECK_MSG(want == got, "snapshot checksum mismatch (corrupt)");
  const std::uint32_t version = get_u32(bytes_, 8);
  SPINELESS_CHECK_MSG(version == kSnapshotVersion,
                      "snapshot version " << version << ", expected "
                                          << kSnapshotVersion);
  config_hash_ = get_u64(bytes_, 12);
  pos_ = kHeaderSize;
}

bool SnapshotReader::load_file(const std::string& path,
                               std::string* bytes_out) {
  if (!util::file_exists(path)) return false;
  SPINELESS_CHECK_MSG(util::read_file(path, bytes_out),
                      "cannot read snapshot " << path);
  return true;
}

void SnapshotReader::need(std::size_t n) const {
  SPINELESS_CHECK_MSG(in_section_ && pos_ + n <= section_end_,
                      "snapshot section overrun");
}

void SnapshotReader::expect_section(std::uint32_t tag) {
  SPINELESS_CHECK(!in_section_);
  SPINELESS_CHECK_MSG(pos_ + 12 <= payload_end_,
                      "snapshot ends before section " << tag);
  const std::uint32_t got = get_u32(bytes_, pos_);
  SPINELESS_CHECK_MSG(got == tag, "snapshot section " << got << ", expected "
                                                      << tag);
  const std::uint64_t len = get_u64(bytes_, pos_ + 4);
  pos_ += 12;
  SPINELESS_CHECK_MSG(pos_ + len <= payload_end_,
                      "snapshot section " << tag << " overruns file");
  section_end_ = pos_ + len;
  in_section_ = true;
}

void SnapshotReader::end_section() {
  SPINELESS_CHECK_MSG(in_section_ && pos_ == section_end_,
                      "snapshot section not fully consumed ("
                          << (section_end_ - pos_) << " bytes left)");
  in_section_ = false;
}

std::uint8_t SnapshotReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t SnapshotReader::u32() {
  need(4);
  const std::uint32_t v = get_u32(bytes_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t SnapshotReader::u64() {
  need(8);
  const std::uint64_t v = get_u64(bytes_, pos_);
  pos_ += 8;
  return v;
}

std::int64_t SnapshotReader::i64() {
  return static_cast<std::int64_t>(u64());
}

double SnapshotReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string SnapshotReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s = bytes_.substr(pos_, n);
  pos_ += n;
  return s;
}

std::array<std::uint64_t, 4> SnapshotReader::rng_state() {
  std::array<std::uint64_t, 4> s;
  for (auto& w : s) w = u64();
  return s;
}

bool SnapshotReader::at_end() const noexcept {
  return !in_section_ && pos_ == payload_end_;
}

void snapshot_patch_u64(const std::string& path, std::uint32_t tag,
                        std::size_t field_index, std::uint64_t value) {
  std::string bytes;
  SPINELESS_CHECK_MSG(SnapshotReader::load_file(path, &bytes),
                      "no snapshot at " << path);
  SPINELESS_CHECK(bytes.size() >= kHeaderSize + 8);
  const std::size_t payload_end = bytes.size() - 8;
  std::size_t pos = kHeaderSize;
  while (pos + 12 <= payload_end) {
    const std::uint32_t got = get_u32(bytes, pos);
    const std::uint64_t len = get_u64(bytes, pos + 4);
    pos += 12;
    if (got == tag) {
      const std::size_t at = pos + field_index * 8;
      SPINELESS_CHECK_MSG(at + 8 <= pos + len,
                          "patch field " << field_index
                                         << " outside section " << tag);
      overwrite_u64(&bytes, at, value);
      overwrite_u64(&bytes, payload_end, fnv1a(bytes.data(), payload_end));
      SPINELESS_CHECK(util::atomic_write_file(path, bytes));
      return;
    }
    pos += len;
  }
  SPINELESS_CHECK_MSG(false, "section " << tag << " not found in " << path);
}

}  // namespace spineless::sim
