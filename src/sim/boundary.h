// Boundary devices for hybrid packet/fluid co-simulation
// (core/hybrid_experiment): a BoundarySource converts a fluid max-min rate
// into paced packet arrivals inside the packet region, and a BoundarySink
// aggregates packet deliveries back into the fluid model's per-window
// demand accounting.
//
// Determinism. A source is an ordinary EventSink with a Network-assigned
// (oid, shard) identity, so its pacing events carry the same priority keys
// in serial and sharded runs. Pacing is pure integer arithmetic: the
// inter-packet gap is units::serialization_time(kDataPacketBytes, rate) —
// a token bucket with a one-packet cap in bits x kSecond fixed point — and
// the first fire of each program() is offset by a splitmix64 phase keyed by
// (seed, boundary link, flow), so two sources at the same rate do not
// inject in lockstep yet every run places the same packets at the same
// picoseconds. Reprogramming only happens at quiescent window boundaries;
// the epoch tag in each event's ctx makes fires scheduled under a previous
// program stale no-ops instead of mixed-rate artifacts.
#pragma once

#include <cstdint>

#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/snapshot.h"

namespace spineless::sim {

class BoundarySource : public EventSink, public Endpoint {
 public:
  // Registers flow_id with the network (this source, paired with `sink`)
  // and draws a deterministic event identity — construction order must be
  // fixed, exactly like TcpSource. phase_key is the (seed, boundary link,
  // flow) hash the first-fire offset is derived from.
  BoundarySource(Network& net, std::int32_t flow_id, topo::HostId src,
                 topo::HostId dst, Endpoint* sink, std::uint64_t phase_key);

  // Window-boundary reprogramming from the hybrid loop (control context,
  // engine quiescent): pace `remaining_bytes` of payload at `rate_bps`.
  // Bumps the epoch; pending fires from earlier programs die silently.
  // rate_bps <= 0 or remaining_bytes <= 0 pauses the source. The first fire
  // lands at max(now, not_before) + phase, so a flow whose nominal start
  // falls inside the upcoming window begins pacing at its exact start
  // rather than the window edge.
  void program(Simulator& sim, std::int64_t rate_bps,
               std::int64_t remaining_bytes, Time not_before = 0);

  // Boundary-fault re-pin (control context, engine quiescent): moves the
  // source to a new (src, dst) gateway pairing when its cut link failed.
  // The oid and flow_id are construction-order invariants and stay put;
  // the shard follows the new src host, and the pacing phase is re-keyed
  // (the caller derives phase_key from (seed, new cut link, flow,
  // generation)) so the packet stream stays a pure function of
  // (seed, plan). Bumps the epoch — in-flight fires from the old pinning
  // become stale no-ops — and pauses the source until the next program().
  void retarget(topo::HostId src, topo::HostId dst, std::uint64_t phase_key);

  topo::HostId src() const noexcept { return src_; }
  topo::HostId dst() const noexcept { return dst_; }
  std::int64_t packets_sent() const noexcept { return packets_sent_; }

  void on_event(Simulator& sim, std::uint64_t ctx) override;
  // Boundary flows are unidirectional (no ACKs); nothing ever arrives here.
  void on_packet(Simulator&, const Packet&) override {}

  // Checkpoint support (driven by the hybrid loop's HYBR section).
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  void transmit(Simulator& sim);

  Network& net_;
  std::int32_t flow_id_;
  topo::HostId src_, dst_;
  topo::NodeId dst_tor_;
  std::uint64_t phase_key_;

  std::uint64_t epoch_ = 0;      // current program; event ctx must match
  std::int64_t rate_bps_ = 0;
  std::int64_t remaining_ = 0;   // payload bytes left in this program
  Time interval_ = 0;            // inter-packet gap at rate_bps_
  std::int64_t seq_ = 0;         // next packet index (monotonic across programs)
  std::int64_t packets_sent_ = 0;
};

// Counts delivered payload bytes toward a fixed flow-size target and pins
// the exact packet-level completion time. Runs in the destination host's
// shard; the hybrid loop reads it only between windows.
class BoundarySink : public Endpoint {
 public:
  explicit BoundarySink(std::int64_t target_bytes) : target_(target_bytes) {}

  void on_packet(Simulator& sim, const Packet& pkt) override;

  std::int64_t delivered() const noexcept { return delivered_; }
  bool completed() const noexcept { return finish_ >= 0; }
  Time finish() const noexcept { return finish_; }

  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  std::int64_t target_;
  std::int64_t delivered_ = 0;
  Time finish_ = -1;
};

}  // namespace spineless::sim
