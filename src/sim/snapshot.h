// Versioned binary snapshot format for deterministic checkpoint/restore.
//
// Layout:
//   magic "SPNLCKPT" | u32 version | u64 config_hash
//   { u32 section_tag | u64 payload_len | payload } *
//   u64 checksum (FNV-1a over everything before it)
//
// All integers are fixed-width little-endian (the simulator only targets
// little-endian hosts; a CHECK at load refuses anything else via the
// checksum anyway). Fixed-width fields keep offsets predictable, which the
// auditor's negative tests exploit through snapshot_patch_u64().
//
// The reader is strict: sections must be consumed in the order written and
// fully consumed before end_section() — version drift fails loudly instead
// of silently misaligning state.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace spineless::sim {

inline constexpr char kSnapshotMagic[8] = {'S', 'P', 'N', 'L',
                                           'C', 'K', 'P', 'T'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

// Order-sensitive chained hash for building config_hash values: a snapshot
// is only restorable into an identically-configured experiment (same seed,
// topology, routing mode, intra_jobs, ...).
class HashChain {
 public:
  HashChain& mix(std::uint64_t v) noexcept;
  HashChain& mix(const std::string& s) noexcept;
  std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0x53504e4c434b5054ULL;  // "SPNLCKPT"
};

class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::uint64_t config_hash);

  void begin_section(std::uint32_t tag);
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void str(const std::string& s);
  void rng_state(const std::array<std::uint64_t, 4>& s);

  // Seals the buffer (appends the checksum) and writes it atomically.
  // Returns false on I/O failure.
  bool write_file(const std::string& path);

  // Sealed bytes without touching disk (tests).
  std::string seal() const;

 private:
  std::string buf_;
  std::size_t section_len_at_ = 0;  // offset of the open section's length
  bool in_section_ = false;
};

class SnapshotReader {
 public:
  // Parses and validates (magic, version, checksum). Throws util Error on
  // corruption; use load_file to distinguish "missing" from "corrupt".
  explicit SnapshotReader(std::string bytes);

  // False if the file does not exist. Throws on a corrupt/invalid file.
  static bool load_file(const std::string& path, std::string* bytes_out);

  std::uint64_t config_hash() const noexcept { return config_hash_; }

  // The next section's tag must equal `tag`.
  void expect_section(std::uint32_t tag);
  void end_section();  // CHECKs the section was fully consumed

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  std::array<std::uint64_t, 4> rng_state();

  bool at_end() const noexcept;  // all sections consumed

 private:
  void need(std::size_t n) const;

  std::string bytes_;
  std::size_t pos_ = 0;
  std::size_t section_end_ = 0;
  bool in_section_ = false;
  std::uint64_t config_hash_ = 0;
  std::size_t payload_end_ = 0;  // start of the trailing checksum
};

// Test/diagnostic helper: find section `tag` in the snapshot at `path`,
// overwrite its `field_index`-th 8-byte word with `value`, and re-seal the
// checksum. This is how the auditor's negative tests corrupt a snapshot
// without tripping the (orthogonal) integrity check.
void snapshot_patch_u64(const std::string& path, std::uint32_t tag,
                        std::size_t field_index, std::uint64_t value);

}  // namespace spineless::sim
