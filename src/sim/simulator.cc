#include "sim/simulator.h"

namespace spineless::sim {

bool Simulator::run_until(Time deadline) {
  while (!heap_.empty() && heap_[0].t <= deadline) {
    const Event ev = heap_[0];
    now_ = ev.t;
    ++processed_;
    top_hole_ = true;  // the root slot may be reused by the first push
    ev.sink->on_event(*this, ev.ctx);
    if (top_hole_) {
      top_hole_ = false;
      pop();
    }
  }
  if (now_ < deadline) now_ = deadline;
  return !heap_.empty();
}

void Simulator::run() {
  while (!heap_.empty()) {
    const Event ev = heap_[0];
    now_ = ev.t;
    ++processed_;
    top_hole_ = true;
    ev.sink->on_event(*this, ev.ctx);
    if (top_hole_) {
      top_hole_ = false;
      pop();
    }
  }
}

}  // namespace spineless::sim
