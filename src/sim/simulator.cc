#include "sim/simulator.h"

namespace spineless::sim {

bool Simulator::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    ev.sink->on_event(*this, ev.ctx);
  }
  if (now_ < deadline) now_ = deadline;
  return !queue_.empty();
}

void Simulator::run() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    ev.sink->on_event(*this, ev.ctx);
  }
}

}  // namespace spineless::sim
