#include "sim/simulator.h"

namespace spineless::sim {

bool Simulator::run_until(Time deadline) {
  while (!heap_.empty() && heap_[0].t <= deadline) dispatch_top();
  cur_key_ = &root_key_;
  if (now_ < deadline) now_ = deadline;
  return !heap_.empty();
}

void Simulator::run_until_key(Time t_bound, std::uint64_t prio_bound) {
  while (!heap_.empty() &&
         (heap_[0].t < t_bound ||
          (heap_[0].t == t_bound && heap_[0].prio < prio_bound))) {
    dispatch_top();
  }
  cur_key_ = &root_key_;
}

bool Simulator::run_until_bounded(Time deadline, int budget) {
  while (budget > 0 && !heap_.empty() && heap_[0].t <= deadline) {
    dispatch_top();
    --budget;
  }
  cur_key_ = &root_key_;
  if (!heap_.empty() && heap_[0].t <= deadline) return true;
  if (now_ < deadline) now_ = deadline;
  return false;
}

bool Simulator::run_until_key_bounded(Time t_bound, std::uint64_t prio_bound,
                                      int budget) {
  while (budget > 0 && !heap_.empty() &&
         (heap_[0].t < t_bound ||
          (heap_[0].t == t_bound && heap_[0].prio < prio_bound))) {
    dispatch_top();
    --budget;
  }
  cur_key_ = &root_key_;
  return !heap_.empty() &&
         (heap_[0].t < t_bound ||
          (heap_[0].t == t_bound && heap_[0].prio < prio_bound));
}

void Simulator::run() {
  while (!heap_.empty()) dispatch_top();
  cur_key_ = &root_key_;
}

void Simulator::dispatch_external(const Event& e) {
  SPINELESS_DCHECK(e.t >= now_);
  now_ = e.t;
  ++processed_;
  cur_key_ = &e.sink->prio_key_;
  e.sink->on_event(*this, e.ctx);
  cur_key_ = &root_key_;
}

void Simulator::assign_lazy_oid() {
  SPINELESS_DCHECK(lazy_oid_ > 0);
  *cur_key_ = static_cast<std::uint64_t>(lazy_oid_--)
              << EventSink::kPrioCounterBits;
}

bool Simulator::route_external(Time t, std::uint64_t prio, EventSink* sink,
                               std::uint64_t ctx) {
  const std::int32_t target = sink->shard_;
  if (target == self_shard_ || target == EventSink::kShardLocal) {
    // kShardLocal sinks scheduled from the control context would land in
    // the control heap, which never runs — every sink a sharded run
    // touches from setup/global context must carry a real shard or be
    // global (Network assigns these identities).
    SPINELESS_CHECK_MSG(
        self_shard_ != kControlShard || target != EventSink::kShardLocal,
        "scheduling a shard-local sink from the sharded control context");
    return false;
  }
  const ShardRouter::RoutedEvent e{t, prio, sink, ctx};
  if (target == EventSink::kShardGlobal) {
    router_->post_global(self_shard_, e);
  } else {
    router_->post(self_shard_, target, e);
  }
  return true;
}

}  // namespace spineless::sim
