// Slab arena of packet buffer nodes, shared by every Link of a Network
// (one pool per shard in sharded runs, so allocation never crosses
// threads mid-window).
//
// Queued and in-flight packets live in PacketNodes drawn from here; nodes
// recycle through the free list, so steady-state forwarding performs zero
// heap allocations and back-to-back experiments on one Network reuse the
// same buffers (the slab count plateaus — asserted by tests/sim/pool_test).
// Slabs grow geometrically (256 nodes doubling up to 16384) so a large
// experiment's warm-up takes O(log n) allocations instead of O(n/256),
// and every node of one slab is contiguous, which keeps the free list's
// initial ordering cache-friendly. In-flight packets ride through the
// event queue as node pointers, which also removes a per-hop staging copy
// the old deque design paid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/packet.h"

namespace spineless::sim {

struct PacketNode {
  Packet pkt;
  PacketNode* next = nullptr;
};

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  PacketNode* alloc(const Packet& pkt) {
    if (free_ == nullptr) grow();
    PacketNode* n = free_;
    free_ = n->next;
    n->pkt = pkt;
    n->next = nullptr;
    ++in_use_;
    return n;
  }

  void release(PacketNode* n) noexcept {
    n->next = free_;
    free_ = n;
    --in_use_;
  }

  // Pre-sizes the arena so the first window of a run allocates nothing.
  void reserve(std::size_t nodes) {
    while (total_nodes_ < nodes) grow();
  }

  // Diagnostics: pooling tests assert blocks_allocated() plateaus across
  // experiments; BENCH_*.json records peak buffer usage. in_use() is
  // signed: in a sharded run a node allocated from one shard's pool may be
  // released into another's free list (both pools outlive the run, so the
  // memory stays valid), which skews the per-pool counters in opposite
  // directions.
  std::size_t blocks_allocated() const noexcept { return slabs_.size(); }
  std::size_t total_nodes() const noexcept { return total_nodes_; }
  std::int64_t in_use() const noexcept { return in_use_; }

 private:
  static constexpr std::size_t kFirstSlab = 256;
  static constexpr std::size_t kMaxSlab = 16384;

  void grow() {
    slabs_.push_back(std::make_unique<PacketNode[]>(next_slab_));
    PacketNode* slab = slabs_.back().get();
    // Thread the slab back-to-front so allocation walks it front-to-back.
    for (std::size_t i = next_slab_; i-- > 0;) {
      slab[i].next = free_;
      free_ = &slab[i];
    }
    total_nodes_ += next_slab_;
    if (next_slab_ < kMaxSlab) next_slab_ *= 2;
  }

  PacketNode* free_ = nullptr;
  std::int64_t in_use_ = 0;
  std::size_t total_nodes_ = 0;
  std::size_t next_slab_ = kFirstSlab;
  std::vector<std::unique_ptr<PacketNode[]>> slabs_;
};

}  // namespace spineless::sim
