// Free-list pool of packet buffer nodes, shared by every Link of a Network.
//
// Queued and in-flight packets live in PacketNodes drawn from here; nodes
// recycle through the free list, so steady-state forwarding performs zero
// heap allocations and back-to-back experiments on one Network reuse the
// same buffers (the block count plateaus — asserted by tests/sim/pool_test).
// In-flight packets ride through the event queue as node pointers, which
// also removes a per-hop staging copy the old deque design paid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/packet.h"

namespace spineless::sim {

struct PacketNode {
  Packet pkt;
  PacketNode* next = nullptr;
};

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  PacketNode* alloc(const Packet& pkt) {
    if (free_ == nullptr) grow();
    PacketNode* n = free_;
    free_ = n->next;
    n->pkt = pkt;
    n->next = nullptr;
    ++in_use_;
    return n;
  }

  void release(PacketNode* n) noexcept {
    n->next = free_;
    free_ = n;
    --in_use_;
  }

  // Diagnostics: pooling tests assert blocks_allocated() plateaus across
  // experiments; BENCH_*.json records peak buffer usage. in_use() is
  // signed: in a sharded run a node allocated from one shard's pool may be
  // released into another's free list (both pools outlive the run, so the
  // memory stays valid), which skews the per-pool counters in opposite
  // directions.
  std::size_t blocks_allocated() const noexcept { return blocks_.size(); }
  std::size_t total_nodes() const noexcept { return blocks_.size() * kBlock; }
  std::int64_t in_use() const noexcept { return in_use_; }

 private:
  static constexpr std::size_t kBlock = 256;

  void grow() {
    blocks_.push_back(std::make_unique<PacketNode[]>(kBlock));
    PacketNode* block = blocks_.back().get();
    for (std::size_t i = 0; i < kBlock; ++i) {
      block[i].next = free_;
      free_ = &block[i];
    }
  }

  PacketNode* free_ = nullptr;
  std::int64_t in_use_ = 0;
  std::vector<std::unique_ptr<PacketNode[]>> blocks_;
};

}  // namespace spineless::sim
