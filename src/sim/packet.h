// The simulated packet. Kept small and passed by value; queues store
// packets directly (no allocation on the data path).
#pragma once

#include <cstdint>

#include "topo/graph.h"
#include "util/units.h"

namespace spineless::sim {

// On-wire sizes. Data packets are full MTU frames carrying kMss payload
// bytes; ACKs are header-only.
constexpr std::int32_t kDataPacketBytes = 1500;
constexpr std::int32_t kMss = 1460;
constexpr std::int32_t kAckPacketBytes = 40;

// In-band control traffic (the fault layer's BFD-style hellos) shares the
// data plane: flow_id < 0 marks a control packet, `seq` packs the directed
// link it probes (2 * link + direction), and switches hand it to the
// Network's HelloHandler instead of forwarding it.
constexpr std::int32_t kCtrlFlowId = -1;
constexpr std::int32_t kHelloPacketBytes = 64;

struct Packet {
  topo::HostId src_host = 0;
  topo::HostId dst_host = 0;
  topo::NodeId dst_tor = 0;   // destination ToR, the forwarding key
  std::int32_t flow_id = 0;
  std::int64_t seq = 0;       // data: packet index; ack: cumulative ack
  std::int32_t size_bytes = kDataPacketBytes;
  bool is_ack = false;
  std::int8_t vrf = 0;        // current VRF level (Shortest-Union mode)
  std::uint8_t hops = 0;      // hop count (TTL guard)
  bool ecn_ce = false;        // ECN congestion-experienced mark (DCTCP)
  bool corrupted = false;     // payload corrupted by a gray link; the
                              // receiver's checksum discards it on delivery
  Time ts = 0;                // sender timestamp, echoed by ACKs (RTT)

  // Source routing (kSourceRouted mode): the pinned switch-level path and
  // the index of the switch the packet is currently at. The pointee is
  // owned by the Network (set_flow_routes) and outlives all packets.
  const std::vector<topo::NodeId>* route = nullptr;
  std::uint8_t route_idx = 0;
};

}  // namespace spineless::sim
