// TCP Reno/NewReno endpoints, htsim-style: packet-counted congestion window
// with slow start, AIMD congestion avoidance, fast retransmit / fast
// recovery on three duplicate ACKs, NewReno partial-ACK retransmission, and
// go-back-N on retransmission timeout with exponential backoff.
//
// The paper's simulations use "TCP and 10Gbps links" (§5.3); this is the
// standard transport every topology/routing combination runs on.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/network.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace spineless::sim {

struct TcpConfig {
  double init_cwnd_pkts = 10;                 // IW10
  Time min_rto = 1 * units::kMillisecond;     // conservative DC floor
  Time max_rto = 100 * units::kMillisecond;
  // DCTCP (extension): react proportionally to the fraction of ECN-marked
  // ACKs, once per window: cwnd *= 1 - alpha/2. Requires
  // NetworkConfig::ecn_threshold_bytes > 0 to see any marks.
  bool dctcp = false;
  double dctcp_gain = 0.0625;  // g in alpha = (1-g) alpha + g F
};

// Completion record for one flow.
struct FlowRecord {
  std::int32_t flow_id = 0;
  std::int64_t bytes = 0;
  Time start = 0;
  Time finish = -1;  // -1 while incomplete
  std::int64_t retransmits = 0;
  std::int64_t timeouts = 0;
  bool completed() const noexcept { return finish >= 0; }
  Time fct() const noexcept { return finish - start; }
};

class TcpSink;

class TcpSource : public EventSink, public Endpoint {
 public:
  // Creates source + paired sink and registers both with the network.
  TcpSource(Network& net, std::int32_t flow_id, topo::HostId src,
            topo::HostId dst, std::int64_t bytes, const TcpConfig& cfg);
  ~TcpSource() override;

  TcpSource(const TcpSource&) = delete;
  TcpSource& operator=(const TcpSource&) = delete;

  // Schedules the connection to begin sending at time t.
  void start_at(Simulator& sim, Time t);

  const FlowRecord& record() const noexcept { return record_; }
  double cwnd_pkts() const noexcept { return cwnd_; }
  // Cumulatively acknowledged payload — the goodput numerator for
  // long-running-flow throughput measurements.
  std::int64_t bytes_acked() const noexcept {
    const std::int64_t b = cum_ * kMss;
    return b < record_.bytes ? b : record_.bytes;
  }

  // Endpoint: ACK arrival.
  void on_packet(Simulator& sim, const Packet& ack) override;
  // EventSink: flow start (ctx 0) or RTO timer (ctx 1).
  void on_event(Simulator& sim, std::uint64_t ctx) override;

  double dctcp_alpha() const noexcept { return dctcp_alpha_; }

  // Checkpoint support: fixed-order dump of the full sender state plus the
  // paired sink's reassembly state. load_state is only valid on a flow that
  // was reconstructed identically (same id/src/dst/bytes/config).
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  void send_available(Simulator& sim);
  void dctcp_on_ack(std::int64_t delta, bool marked);
  void transmit(Simulator& sim, std::int64_t seq);
  void arm_rto(Simulator& sim);
  void schedule_rto_event(Simulator& sim);
  void note_rtt_sample(Time rtt);
  void handle_new_ack(Simulator& sim, std::int64_t acked, Time echoed_ts,
                      bool marked);
  void handle_dup_ack(Simulator& sim);
  void handle_timeout(Simulator& sim);

  Network& net_;
  TcpConfig cfg_;
  topo::HostId src_, dst_;
  topo::NodeId dst_tor_;
  std::int64_t total_pkts_;
  std::unique_ptr<TcpSink> sink_;

  // Sender state (in packets).
  std::int64_t snd_next_ = 0;  // next new sequence to send
  std::int64_t cum_ = 0;       // highest cumulative ACK (count received)
  double cwnd_;
  double ssthresh_ = 1e18;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;  // snd_next_ when recovery was entered

  // DCTCP state: per-window marked/acked byte counting and the EWMA alpha.
  double dctcp_alpha_ = 0;
  std::int64_t dctcp_marked_ = 0;
  std::int64_t dctcp_acked_ = 0;
  std::int64_t dctcp_window_end_ = 0;

  // RTT estimation (Jacobson/Karels).
  Time srtt_ = 0;
  Time rttvar_ = 0;
  Time rto_;
  int backoff_ = 0;
  // Retransmission timer, deadline-checked: stale fires re-check
  // rto_deadline_ and re-arm instead of timing out. (Pushing a fresh timer
  // per ACK left thousands of stale events in the heap, and the deeper
  // sift per push/pop dominated the event loop.) Most ACKs only advance
  // the deadline and piggyback on the pending event, but the deadline can
  // also move EARLIER (an ACK resets backoff_, RTT samples shrink rto_);
  // then an extra event is scheduled at the new deadline so a loss is
  // never detected at a stale backed-off fire time. pending_fires_ holds
  // the scheduled times of in-flight timer events: new times are pushed
  // only when strictly earlier than every pending one and events fire in
  // time order, so it is a strictly-decreasing stack whose back() is the
  // earliest pending fire.
  Time rto_deadline_ = 0;
  std::vector<Time> pending_fires_;

  FlowRecord record_;
  bool started_ = false;
};

class TcpSink : public Endpoint {
 public:
  TcpSink(Network& net, std::int32_t flow_id) : net_(net), flow_id_(flow_id) {}

  void on_packet(Simulator& sim, const Packet& data) override;
  std::int64_t cumulative() const noexcept { return next_expected_; }

  // Checkpoint support (driven by the owning TcpSource).
  void save_state(SnapshotWriter& w) const;
  void load_state(SnapshotReader& r);

 private:
  Network& net_;
  std::int32_t flow_id_;
  std::int64_t next_expected_ = 0;
  std::vector<bool> received_;  // out-of-order buffer flags
  // Memoized ACK return address (tor_of_host binary-searches a prefix-sum
  // array; the sender of a flow never changes).
  topo::HostId ack_dst_ = -1;
  topo::NodeId ack_tor_ = 0;
};

// Builds sources for a whole workload and summarizes FCTs.
class FlowDriver : public Checkpointable {
 public:
  FlowDriver(Network& net, const TcpConfig& cfg) : net_(net), cfg_(cfg) {}

  // Adds a flow; returns its id (dense, in insertion order).
  std::int32_t add_flow(Simulator& sim, topo::HostId src, topo::HostId dst,
                        std::int64_t bytes, Time start);

  // Checkpointable: flows in construction (id) order.
  void collect_sinks(SinkRegistry& reg) override;
  void save_state(SnapshotWriter& w) const override;
  void load_state(SnapshotReader& r) override;

  std::size_t num_flows() const noexcept { return flows_.size(); }
  std::size_t completed_flows() const;
  // FCTs of completed flows, in milliseconds.
  Summary fct_ms() const;
  std::int64_t total_retransmits() const;
  const TcpSource& flow(std::size_t i) const { return *flows_.at(i); }

 private:
  Network& net_;
  TcpConfig cfg_;
  std::vector<std::unique_ptr<TcpSource>> flows_;
};

}  // namespace spineless::sim
