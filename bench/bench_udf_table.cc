// §3.1 reproduction (E4 in DESIGN.md): the flatness analysis — NSR and UDF
// for leaf-spine vs its equal-equipment flat rewirings, plus the structural
// statistics behind the paper's arguments (path lengths for the congestion
// argument, bisection for §6.3's scale argument).
//
// Expected: UDF(leaf-spine) = 2 in closed form for every (x, y); the
// constructed RRG flat transform measures ~2 (server-count quantization);
// flat topologies have strictly higher NSR.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/udf_report.h"
#include "topo/analysis.h"
#include "util/table.h"

namespace spineless {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header("Section 3.1: NSR / UDF analysis", s, flags);

  // One analytic cell; the sweep still gives per-cell wall time + JSON.
  core::Runner runner(bench::jobs_from(flags));
  const auto cells = bench::sweep(
      runner, 1, [&](std::size_t) { return core::make_udf_report(s); });
  const core::UdfReport& rep = cells[0].value;
  bench::BenchJson json("udf_table", flags);
  {
    bench::BenchJson::Cell jc;
    jc.label = "udf_report";
    jc.wall_s = cells[0].wall_s;
    json.add(std::move(jc));
  }
  Table t({"topology", "switches", "servers", "NSR(mean)", "NSR(min)",
           "NSR(max)", "diameter", "mean path", "bisection<="});
  for (const auto* r : {&rep.leaf_spine, &rep.rrg, &rep.dring}) {
    t.add_row({r->name, std::to_string(r->switches),
               std::to_string(r->servers), Table::fmt(r->nsr.mean),
               Table::fmt(r->nsr.min), Table::fmt(r->nsr.max),
               std::to_string(r->paths.diameter), Table::fmt(r->paths.mean),
               std::to_string(r->bisection_upper)});
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf("UDF(leaf-spine), closed form : %.3f\n", rep.udf_closed_form);
  std::printf("UDF via constructed RRG F(T) : %.3f\n", rep.udf_rrg);
  std::printf("UDF via constructed DRing    : %.3f\n\n", rep.udf_dring);

  // The UDF is independent of (x, y): sweep a few shapes.
  Table sweep({"x", "y", "NSR(T)", "NSR(F(T))", "UDF"});
  for (const auto& [x, y] : std::vector<std::pair<int, int>>{
           {12, 4}, {24, 8}, {48, 16}, {30, 10}, {36, 6}, {96, 32}}) {
    sweep.add_row({std::to_string(x), std::to_string(y),
                   Table::fmt(topo::leaf_spine_nsr(x, y)),
                   Table::fmt(topo::leaf_spine_flat_nsr(x, y)),
                   Table::fmt(topo::leaf_spine_udf(x, y))});
  }
  std::printf("UDF is 2 for every leaf-spine(x, y):\n%s",
              sweep.to_string().c_str());
  json.write();
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
