// B2 (DESIGN.md; §7 "Dynamic Networks based on flat topologies"): Opera
// imposes transient *expander* graphs while links reconfigure; the paper
// asks "how much improvement can be gained by reconfiguring links to
// obtain another flat network instead of an expander" at small scale.
//
// Fluid-model study: time is sliced into slots; in each slot the fabric is
// one configuration from a rotation family. Long-running flows get the
// slot's max-min fair rate; a flow's effective rate is the slot average
// (flows outlive many reconfigurations). We compare rotation families
// built from (a) DRing relabelings and (b) fresh RRG samples, against the
// matching static fabric, for uniform and skewed demands.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.h"
#include "core/throughput_experiment.h"
#include "flowsim/fluid_network.h"
#include "topo/builders.h"
#include "topo/expand.h"
#include "util/table.h"
#include "workload/cs_model.h"
#include "util/rng.h"

namespace spineless {
namespace {

using topo::Graph;
using topo::HostId;

// Mean per-flow rate of `pairs` long flows on graph g under SU(2)-style
// hashed paths (fluid model).
double mean_rate(const Graph& g,
                 const std::vector<std::pair<HostId, HostId>>& pairs,
                 std::uint64_t seed) {
  core::PathSampler sampler(g, sim::RoutingMode::kShortestUnion, 2);
  flowsim::FluidNetwork net(g, 10e9);
  Rng rng(seed);
  for (const auto& [a, b] : pairs) {
    net.add_flow(a, b, sampler.sample(g.tor_of_host(a), g.tor_of_host(b),
                                      rng));
  }
  const auto rates = net.solve();
  return flowsim::FluidNetwork::mean(rates);
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const int m = static_cast<int>(flags.get_int("supernodes", 8));
  const int n = static_cast<int>(flags.get_int("n", 3));
  const int servers = static_cast<int>(flags.get_int("servers", 8));
  const int slots = static_cast<int>(flags.get_int("slots", 6));

  std::printf("== Dynamic flat networks (fluid, %d slots): rotate-to-DRing "
              "vs rotate-to-RRG ==\n", slots);
  const topo::DRing base = topo::make_dring(m, n, servers);
  const int racks = base.graph.num_switches();
  const int degree = base.graph.network_degree(0);
  std::printf("%d racks, network degree %d, %d servers/rack, jobs=%d\n\n",
              racks, degree, servers, bench::jobs_from(flags));

  // Demands: uniform pairs and a skewed burst (one rack to the rest).
  Rng rng(3);
  std::vector<std::pair<HostId, HostId>> uniform_pairs;
  const int hosts = base.graph.total_servers();
  for (int i = 0; i < 4 * hosts; ++i) {
    const auto a = static_cast<HostId>(rng.uniform(
        static_cast<std::uint64_t>(hosts)));
    auto b = static_cast<HostId>(rng.uniform(
        static_cast<std::uint64_t>(hosts)));
    if (a == b) b = (b + 1) % hosts;
    uniform_pairs.emplace_back(a, b);
  }
  std::vector<std::pair<HostId, HostId>> burst_pairs;
  for (int i = 0; i < servers; ++i)
    for (int r = 1; r < racks; ++r)
      burst_pairs.emplace_back(
          base.graph.first_host_of(0) + i,
          base.graph.first_host_of(static_cast<topo::NodeId>(r)));

  struct Family {
    const char* name;
    std::vector<Graph> slots;
  };
  std::vector<Family> families;
  // (a) DRing rotations: relabel which physical rack plays which ring role
  //     each slot (a cyclic shift of the supernode assignment).
  {
    Family f{"rotating DRing", {}};
    for (int slot = 0; slot < slots; ++slot) {
      topo::DRing d = topo::make_dring(m, n, servers);
      // Shift: rack i takes the role of rack (i + shift) — realized by
      // regenerating with a rotated ring order.
      std::vector<int> order(static_cast<std::size_t>(m));
      for (int i = 0; i < m; ++i)
        order[static_cast<std::size_t>(i)] = (i + slot) % m;
      std::vector<int> srv(static_cast<std::size_t>(racks), servers);
      f.slots.push_back(topo::dring_graph_from_metadata(
          d.supernode_of, order, 0, srv));
    }
    families.push_back(std::move(f));
  }
  // (b) Expander rotations: a fresh equal-degree RRG per slot.
  {
    Family f{"rotating RRG", {}};
    for (int slot = 0; slot < slots; ++slot)
      f.slots.push_back(topo::make_rrg(racks, degree, servers,
                                       static_cast<std::uint64_t>(slot) + 11));
    families.push_back(std::move(f));
  }
  // Static references.
  families.push_back(Family{"static DRing", {base.graph}});
  families.push_back(
      Family{"static RRG", {topo::make_rrg(racks, degree, servers, 99)}});

  // Flatten (family, slot, demand) into independent fluid-solve cells.
  struct CellId {
    std::size_t family, slot;
    bool burst;
  };
  std::vector<CellId> cells;
  for (std::size_t fi = 0; fi < families.size(); ++fi)
    for (std::size_t si = 0; si < families[fi].slots.size(); ++si)
      for (const bool burst : {false, true}) cells.push_back({fi, si, burst});

  core::Runner runner(bench::jobs_from(flags));
  const auto results =
      bench::sweep(runner, cells.size(), [&](std::size_t idx) {
        const CellId& c = cells[idx];
        return mean_rate(families[c.family].slots[c.slot],
                         c.burst ? burst_pairs : uniform_pairs,
                         (c.burst ? 13 : 7) + c.slot);
      });

  bench::BenchJson json("dynamic", flags);
  Table t({"fabric", "slots", "uniform mean (Gbps)", "burst mean (Gbps)"});
  for (std::size_t fi = 0; fi < families.size(); ++fi) {
    const auto& f = families[fi];
    double uni = 0, burst = 0;
    double wall = 0;
    for (std::size_t idx = 0; idx < cells.size(); ++idx) {
      if (cells[idx].family != fi) continue;
      (cells[idx].burst ? burst : uni) += results[idx].value;
      wall += results[idx].wall_s;
    }
    uni /= static_cast<double>(f.slots.size());
    burst /= static_cast<double>(f.slots.size());
    t.add_row({f.name, std::to_string(f.slots.size()),
               Table::fmt(uni / 1e9, 2), Table::fmt(burst / 1e9, 2)});
    bench::BenchJson::Cell jc;
    jc.label = f.name;
    jc.wall_s = wall;
    json.add(std::move(jc));
  }
  std::printf("%s\n", t.to_string().c_str());
  json.write();
  std::printf(
      "Reading: if rotating among DRing relabelings matches rotating\n"
      "expanders at this scale, dynamic fabrics can keep DRing's wiring\n"
      "locality without the performance cost — the §7 question.\n");
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
