// Shared helpers for the figure/table reproduction binaries.
//
// Every bench supports two scales:
//  * default  — a medium configuration (same switch roles, 3:1
//    oversubscription, ~1/2 the port count) that finishes in seconds;
//  * --scale=paper or SPINELESS_PAPER_SCALE=1 — the paper's §5.1
//    configuration (leaf-spine(48,16), 3072 servers, 12-supernode DRing).
//
// Every bench also supports --jobs=N (default: SPINELESS_JOBS or hardware
// concurrency): independent cells fan out over a core::Runner, and output
// is byte-identical for every N because cells derive their randomness from
// their index and results are collected in index order. Each bench writes
// a machine-readable BENCH_<name>.json next to the working directory
// (override the path with --json_out=...).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/fct_experiment.h"
#include "core/hybrid_experiment.h"
#include "core/runner.h"
#include "core/scenario.h"
#include "util/error.h"
#include "util/flags.h"
#include "util/fsio.h"
#include "util/json.h"
#include "util/resilient.h"
#include "util/sweep_journal.h"

namespace spineless::bench {

// Process-start timestamp for total_wall_s. A namespace-scope inline
// constant so it is captured during static initialization — BenchJson used
// to start this clock at its own construction, after every cell had
// already run, reporting totals near zero.
inline const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

// --- SIGINT/SIGTERM handling -----------------------------------------------
// First signal: set the flag; cells poll it at their checkpoint boundaries,
// flush a final snapshot, and the driver writes a partial BENCH JSON.
// Second signal: the user really means it — hard-exit.
namespace detail {
inline std::atomic<bool> g_interrupted{false};
inline void on_signal(int) {
  if (g_interrupted.exchange(true)) std::_Exit(130);
}
}  // namespace detail

inline bool interrupted() {
  return detail::g_interrupted.load(std::memory_order_acquire);
}

inline void install_signal_handlers() {
  std::signal(SIGINT, detail::on_signal);
  std::signal(SIGTERM, detail::on_signal);
}

inline core::Scenario scenario_from(const Flags& flags) {
  core::Scenario s;
  if (flags.paper_scale()) {
    s = core::Scenario::paper();
  } else {
    // Medium default: leaf-spine(24, 8) -> 32 racks, 768 servers; flat
    // equivalents use the same 48 switches... (x + 2y = 40 switches).
    s.x = 24;
    s.y = 8;
    s.dring_supernodes = 10;
  }
  s.x = static_cast<int>(flags.get_int("x", s.x));
  s.y = static_cast<int>(flags.get_int("y", s.y));
  s.dring_supernodes = static_cast<int>(
      flags.get_int("supernodes", s.dring_supernodes));
  s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  return s;
}

inline int jobs_from(const Flags& flags) {
  const auto jobs = flags.get_int("jobs", core::default_jobs());
  return jobs < 1 ? 1 : static_cast<int>(jobs);
}

// --intra_jobs=N: shards per simulated cell (sharded conservative engine;
// results are byte-identical for every N). Default 1 = serial engine.
inline int intra_jobs_from(const Flags& flags) {
  const auto intra = flags.get_int("intra_jobs", 1);
  return intra < 1 ? 1 : static_cast<int>(intra);
}

// Outer (cell-level) worker count once each cell takes intra_jobs threads:
// --jobs is the total thread budget, split as outer x intra.
inline int outer_jobs(const Flags& flags) {
  return std::max(1, jobs_from(flags) / intra_jobs_from(flags));
}

// Self-healing knobs: --max_attempts (retries on the same seed),
// --cell_timeout_s (per-attempt wall clock), --progress_timeout_s (max
// seconds without the event counter advancing), --backoff_s. SIGINT/SIGTERM
// compose in as the external interrupt, so a ^C cancels cells at their next
// checkpoint boundary instead of killing the process mid-write.
inline util::RetryPolicy retry_policy_from(const Flags& flags) {
  util::RetryPolicy p;
  p.max_attempts =
      std::max<int>(1, static_cast<int>(flags.get_int("max_attempts", 2)));
  p.wall_timeout_s = flags.get_double("cell_timeout_s", 0);
  p.progress_timeout_s = flags.get_double("progress_timeout_s", 0);
  p.backoff_base_s = flags.get_double("backoff_s", 0.25);
  p.interrupted = [] { return interrupted(); };
  return p;
}

inline void print_header(const char* title, const core::Scenario& s,
                         const Flags& flags) {
  std::printf("== %s ==\n", title);
  std::printf(
      "scenario: leaf-spine(x=%d, y=%d) | %d switches x %d ports | "
      "%d servers | DRing m=%d | scale=%s | jobs=%d\n\n",
      s.x, s.y, s.num_switches(), s.ports_per_switch(),
      s.leaf_spine_servers(), s.dring_supernodes,
      flags.paper_scale() ? "paper" : "medium", jobs_from(flags));
}

// A cell result plus the wall-clock seconds that cell took on its worker.
template <typename R>
struct Timed {
  R value{};
  double wall_s = 0;
};

// Fans fn(0..n-1) over the runner, wall-timing each cell. Results come
// back in index order regardless of jobs (see core::Runner's determinism
// contract), so drivers print them exactly as a serial loop would have.
template <typename Fn>
auto sweep(core::Runner& runner, std::size_t n, Fn&& fn)
    -> std::vector<Timed<std::invoke_result_t<Fn&, std::size_t>>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  return runner.map(n, [&fn](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    Timed<R> timed;
    timed.value = fn(i);
    timed.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return timed;
  });
}

// Accumulates per-cell rows and writes BENCH_<name>.json on write():
//   {"bench": ..., "scale": ..., "jobs": N, "total_wall_s": ...,
//    "cells": [{"label": ..., "wall_s": ..., "events": ...,
//               "events_per_sec": ..., "fct": {...}}, ...]}
class BenchJson {
 public:
  struct Cell {
    std::string label;
    double wall_s = 0;
    std::uint64_t events = 0;
    int intra_jobs = 1;
    double table_build_s = 0;
    // Self-healing runner outcome. Emitted only when non-default so a clean
    // run's JSON is byte-identical with or without the resilient path.
    std::string status = "ok";  // "ok" | "failed" | "interrupted"
    int attempts = 1;
    std::string error;
    bool has_fct = false;
    std::size_t flows = 0;
    std::size_t completed = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    std::int64_t drops = 0;
    std::int64_t retransmits = 0;
    // Fault-injection cells (bench_failures part 3): degradation metrics
    // from the FaultInjector / DegradationMonitor pair.
    bool has_fault = false;
    double blackhole_s = 0;
    double detect_ms = -1;  // first outage: BFD detection delay
    double outage_ms = -1;  // first outage: until tables routed around it
    std::int64_t blackhole_drops = 0;
    std::int64_t gray_drops = 0;
    std::int64_t corrupt_drops = 0;
    std::size_t rescued_flows = 0;   // completed only thanks to an RTO
    double goodput_recovery = 0;     // post-restore / pre-fault goodput
    int undetected_gray_windows = 0;
    std::size_t fault_outages = 0;   // control-plane outage events observed
    std::size_t fault_completed = 0;
    std::size_t fault_flows = 0;
    // Hybrid packet/fluid cells (bench_hybrid, bench_fig6_scale --scale=rng):
    // the per-flow byte-identity fingerprint plus the co-simulation split.
    bool has_hybrid = false;
    std::uint64_t result_hash = 0;
    std::uint64_t fluid_windows = 0;
    std::uint64_t fluid_solves = 0;
    std::uint64_t fluid_solves_skipped = 0;
    std::size_t internal_flows = 0;
    std::size_t boundary_flows = 0;
    std::size_t external_flows = 0;
    int region_switches = 0;
    int cut_links = 0;
    // Whole-network fault-tolerance cells (bench_hybrid --faults): the
    // cross-boundary fault metrics from HybridResult. goodput_recovery is
    // shared with the packet-fault block above — a cell is one or the other.
    bool has_hybrid_fault = false;
    int failed_links = 0;
    std::size_t stalled_flows = 0;
    std::size_t boundary_repins = 0;
    std::size_t fluid_outages = 0;
    double fluid_blackhole_s = 0;
    double stalled_s = 0;
    // Calibration cells (bench_hybrid): the pure-packet reference and the
    // hybrid/packet FCT ratios the documented tolerance is judged against.
    bool has_calib = false;
    double packet_p50_ms = 0;
    double packet_p99_ms = 0;
    double p50_ratio = 0;
    double p99_ratio = 0;
  };

  BenchJson(std::string name, const Flags& flags)
      : name_(std::move(name)),
        scale_(flags.get("scale", flags.paper_scale() ? "paper" : "medium")),
        jobs_(jobs_from(flags)),
        path_(flags.get("json_out", "BENCH_" + name_ + ".json")) {}

  void add(Cell cell) { cells_.push_back(std::move(cell)); }

  // An interrupted sweep writes what it has, marked "partial": true; a
  // --resume run completes the rest.
  void mark_partial() { partial_ = true; }
  // A resumed sweep carries cell wall times from a previous process, which
  // can exceed this process's uptime — relax the total-wall sanity check.
  void mark_resumed() { resumed_ = true; }

  // Convenience: a cell backed by a timed FctResult.
  void add_fct(const std::string& label,
               const Timed<core::FctResult>& timed) {
    const core::FctResult& r = timed.value;
    Cell c;
    c.label = label;
    c.wall_s = timed.wall_s;
    c.events = r.events;
    c.intra_jobs = r.intra_jobs;
    c.table_build_s = r.table_build_s;
    c.has_fct = true;
    c.flows = r.flows;
    c.completed = r.completed;
    c.p50_ms = r.median_ms();
    c.p99_ms = r.p99_ms();
    c.drops = r.queue_drops;
    c.retransmits = r.retransmits;
    add(std::move(c));
  }

  // Writes the file; prints a one-line pointer so users find the artifact.
  void write() const {
    // total_wall_s counts from process start: with parallel cells it is
    // NOT the sum of cell times, but it can never be less than the
    // longest single cell.
    const double total_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      kProcessStart)
            .count();
    double max_cell_wall_s = 0;
    for (const Cell& c : cells_)
      max_cell_wall_s = std::max(max_cell_wall_s, c.wall_s);
    SPINELESS_CHECK_MSG(resumed_ || total_wall_s >= max_cell_wall_s,
                        "total_wall_s below the longest cell — the bench "
                        "clock must start at process start");
    JsonWriter w;
    w.begin_object();
    w.kv("bench", name_);
    w.kv("scale", scale_);
    w.kv("jobs", jobs_);
    if (partial_) w.kv("partial", true);
    w.kv("total_wall_s", total_wall_s);
    w.key("cells");
    w.begin_array();
    for (const Cell& c : cells_) {
      w.begin_object();
      w.kv("label", c.label);
      w.kv("wall_s", c.wall_s);
      w.kv("events", c.events);
      w.kv("events_per_sec",
           c.wall_s > 0 ? static_cast<double>(c.events) / c.wall_s : 0.0);
      w.kv("intra_jobs", c.intra_jobs);
      if (c.status != "ok") {
        w.kv("status", c.status);
        if (!c.error.empty()) w.kv("error", c.error);
      }
      if (c.attempts > 1) w.kv("attempts", c.attempts);
      if (c.table_build_s > 0) w.kv("table_build_s", c.table_build_s);
      if (c.has_fct) {
        w.key("fct");
        w.begin_object();
        w.kv("flows", static_cast<std::int64_t>(c.flows));
        w.kv("completed", static_cast<std::int64_t>(c.completed));
        w.kv("p50_ms", c.p50_ms);
        w.kv("p99_ms", c.p99_ms);
        w.kv("drops", c.drops);
        w.kv("retransmits", c.retransmits);
        w.end_object();
      }
      if (c.has_hybrid) {
        w.key("hybrid");
        w.begin_object();
        w.kv("result_hash", c.result_hash);
        w.kv("fluid_windows", c.fluid_windows);
        w.kv("fluid_solves", c.fluid_solves);
        w.kv("fluid_solves_skipped", c.fluid_solves_skipped);
        w.kv("internal_flows", static_cast<std::int64_t>(c.internal_flows));
        w.kv("boundary_flows", static_cast<std::int64_t>(c.boundary_flows));
        w.kv("external_flows", static_cast<std::int64_t>(c.external_flows));
        w.kv("region_switches", c.region_switches);
        w.kv("cut_links", c.cut_links);
        w.end_object();
      }
      if (c.has_hybrid_fault) {
        w.key("fault_tolerance");
        w.begin_object();
        w.kv("failed_links", c.failed_links);
        w.kv("fluid_outages", static_cast<std::int64_t>(c.fluid_outages));
        w.kv("stalled_flows", static_cast<std::int64_t>(c.stalled_flows));
        w.kv("boundary_repins",
             static_cast<std::int64_t>(c.boundary_repins));
        w.kv("fluid_blackhole_s", c.fluid_blackhole_s);
        w.kv("stalled_s", c.stalled_s);
        w.kv("goodput_recovery", c.goodput_recovery);
        w.end_object();
      }
      if (c.has_calib) {
        w.key("calibration");
        w.begin_object();
        w.kv("packet_p50_ms", c.packet_p50_ms);
        w.kv("packet_p99_ms", c.packet_p99_ms);
        w.kv("p50_ratio", c.p50_ratio);
        w.kv("p99_ratio", c.p99_ratio);
        w.end_object();
      }
      if (c.has_fault) {
        w.key("fault");
        w.begin_object();
        w.kv("blackhole_s", c.blackhole_s);
        w.kv("detect_ms", c.detect_ms);
        w.kv("outage_ms", c.outage_ms);
        w.kv("blackhole_drops", c.blackhole_drops);
        w.kv("gray_drops", c.gray_drops);
        w.kv("corrupt_drops", c.corrupt_drops);
        w.kv("rescued_flows", static_cast<std::int64_t>(c.rescued_flows));
        w.kv("goodput_recovery", c.goodput_recovery);
        w.kv("undetected_gray_windows", c.undetected_gray_windows);
        w.kv("ctrl_outages", static_cast<std::int64_t>(c.fault_outages));
        w.kv("completed", static_cast<std::int64_t>(c.fault_completed));
        w.kv("flows", static_cast<std::int64_t>(c.fault_flows));
        w.end_object();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (write_json_file(path_, w))
      std::printf("\nwrote %s (%zu cells)\n", path_.c_str(), cells_.size());
    else
      std::fprintf(stderr, "warning: could not write %s\n", path_.c_str());
  }

 private:
  std::string name_;
  std::string scale_;
  int jobs_;
  std::string path_;
  std::vector<Cell> cells_;
  bool partial_ = false;
  bool resumed_ = false;
};

// --- Resumable sweeps --------------------------------------------------------
// Cell results round-trip through the sweep journal as key=value strings:
// doubles via %.17g (exact for IEEE-754 binary64), everything else as
// decimal integers. Default-valued fields are omitted on write and default
// on read, so a journaled cell re-emits the same JSON a live one would.

namespace detail {

inline std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

inline double field_d(const util::SweepJournal::Fields& f, const char* key,
                      double def = 0) {
  const auto it = f.find(key);
  return it == f.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

inline std::int64_t field_i(const util::SweepJournal::Fields& f,
                            const char* key, std::int64_t def = 0) {
  const auto it = f.find(key);
  return it == f.end() ? def
                       : std::strtoll(it->second.c_str(), nullptr, 10);
}

inline std::uint64_t field_u(const util::SweepJournal::Fields& f,
                             const char* key, std::uint64_t def = 0) {
  const auto it = f.find(key);
  return it == f.end() ? def
                       : std::strtoull(it->second.c_str(), nullptr, 10);
}

inline std::string field_s(const util::SweepJournal::Fields& f,
                           const char* key, const char* def = "") {
  const auto it = f.find(key);
  return it == f.end() ? def : it->second;
}

}  // namespace detail

inline util::SweepJournal::Fields cell_to_fields(const BenchJson::Cell& c) {
  using detail::fmt_double;
  util::SweepJournal::Fields f;
  f["label"] = c.label;
  f["wall_s"] = fmt_double(c.wall_s);
  f["events"] = std::to_string(c.events);
  f["intra_jobs"] = std::to_string(c.intra_jobs);
  if (c.table_build_s > 0) f["table_build_s"] = fmt_double(c.table_build_s);
  if (c.status != "ok") f["status"] = c.status;
  if (c.attempts > 1) f["attempts"] = std::to_string(c.attempts);
  if (!c.error.empty()) f["error"] = c.error;
  if (c.has_fct) {
    f["fct"] = "1";
    f["flows"] = std::to_string(c.flows);
    f["completed"] = std::to_string(c.completed);
    f["p50_ms"] = fmt_double(c.p50_ms);
    f["p99_ms"] = fmt_double(c.p99_ms);
    f["drops"] = std::to_string(c.drops);
    f["retransmits"] = std::to_string(c.retransmits);
  }
  if (c.has_hybrid) {
    f["hybrid"] = "1";
    f["result_hash"] = std::to_string(c.result_hash);
    f["fluid_windows"] = std::to_string(c.fluid_windows);
    f["fluid_solves"] = std::to_string(c.fluid_solves);
    f["fluid_solves_skipped"] = std::to_string(c.fluid_solves_skipped);
    f["internal_flows"] = std::to_string(c.internal_flows);
    f["boundary_flows"] = std::to_string(c.boundary_flows);
    f["external_flows"] = std::to_string(c.external_flows);
    f["region_switches"] = std::to_string(c.region_switches);
    f["cut_links"] = std::to_string(c.cut_links);
  }
  if (c.has_hybrid_fault) {
    f["hybrid_fault"] = "1";
    f["failed_links"] = std::to_string(c.failed_links);
    f["fluid_outages"] = std::to_string(c.fluid_outages);
    f["stalled_flows"] = std::to_string(c.stalled_flows);
    f["boundary_repins"] = std::to_string(c.boundary_repins);
    f["fluid_blackhole_s"] = fmt_double(c.fluid_blackhole_s);
    f["stalled_s"] = fmt_double(c.stalled_s);
    f["goodput_recovery"] = fmt_double(c.goodput_recovery);
  }
  if (c.has_calib) {
    f["calib"] = "1";
    f["packet_p50_ms"] = fmt_double(c.packet_p50_ms);
    f["packet_p99_ms"] = fmt_double(c.packet_p99_ms);
    f["p50_ratio"] = fmt_double(c.p50_ratio);
    f["p99_ratio"] = fmt_double(c.p99_ratio);
  }
  if (c.has_fault) {
    f["fault"] = "1";
    f["blackhole_s"] = fmt_double(c.blackhole_s);
    f["detect_ms"] = fmt_double(c.detect_ms);
    f["outage_ms"] = fmt_double(c.outage_ms);
    f["blackhole_drops"] = std::to_string(c.blackhole_drops);
    f["gray_drops"] = std::to_string(c.gray_drops);
    f["corrupt_drops"] = std::to_string(c.corrupt_drops);
    f["rescued_flows"] = std::to_string(c.rescued_flows);
    f["goodput_recovery"] = fmt_double(c.goodput_recovery);
    f["undetected_gray"] = std::to_string(c.undetected_gray_windows);
    f["ctrl_outages"] = std::to_string(c.fault_outages);
    f["fault_completed"] = std::to_string(c.fault_completed);
    f["fault_flows"] = std::to_string(c.fault_flows);
  }
  return f;
}

inline BenchJson::Cell cell_from_fields(const util::SweepJournal::Fields& f) {
  using namespace detail;
  BenchJson::Cell c;
  c.label = field_s(f, "label");
  c.wall_s = field_d(f, "wall_s");
  c.events = static_cast<std::uint64_t>(field_i(f, "events"));
  c.intra_jobs = static_cast<int>(field_i(f, "intra_jobs", 1));
  c.table_build_s = field_d(f, "table_build_s");
  c.status = field_s(f, "status", "ok");
  c.attempts = static_cast<int>(field_i(f, "attempts", 1));
  c.error = field_s(f, "error");
  c.has_fct = field_i(f, "fct") != 0;
  if (c.has_fct) {
    c.flows = static_cast<std::size_t>(field_i(f, "flows"));
    c.completed = static_cast<std::size_t>(field_i(f, "completed"));
    c.p50_ms = field_d(f, "p50_ms");
    c.p99_ms = field_d(f, "p99_ms");
    c.drops = field_i(f, "drops");
    c.retransmits = field_i(f, "retransmits");
  }
  c.has_hybrid = field_i(f, "hybrid") != 0;
  if (c.has_hybrid) {
    c.result_hash = field_u(f, "result_hash");  // full uint64, no sign clip
    c.fluid_windows = static_cast<std::uint64_t>(field_i(f, "fluid_windows"));
    c.fluid_solves = static_cast<std::uint64_t>(field_i(f, "fluid_solves"));
    c.fluid_solves_skipped =
        static_cast<std::uint64_t>(field_i(f, "fluid_solves_skipped"));
    c.internal_flows = static_cast<std::size_t>(field_i(f, "internal_flows"));
    c.boundary_flows = static_cast<std::size_t>(field_i(f, "boundary_flows"));
    c.external_flows = static_cast<std::size_t>(field_i(f, "external_flows"));
    c.region_switches = static_cast<int>(field_i(f, "region_switches"));
    c.cut_links = static_cast<int>(field_i(f, "cut_links"));
  }
  c.has_hybrid_fault = field_i(f, "hybrid_fault") != 0;
  if (c.has_hybrid_fault) {
    c.failed_links = static_cast<int>(field_i(f, "failed_links"));
    c.fluid_outages = static_cast<std::size_t>(field_i(f, "fluid_outages"));
    c.stalled_flows = static_cast<std::size_t>(field_i(f, "stalled_flows"));
    c.boundary_repins =
        static_cast<std::size_t>(field_i(f, "boundary_repins"));
    c.fluid_blackhole_s = field_d(f, "fluid_blackhole_s");
    c.stalled_s = field_d(f, "stalled_s");
    c.goodput_recovery = field_d(f, "goodput_recovery");
  }
  c.has_calib = field_i(f, "calib") != 0;
  if (c.has_calib) {
    c.packet_p50_ms = field_d(f, "packet_p50_ms");
    c.packet_p99_ms = field_d(f, "packet_p99_ms");
    c.p50_ratio = field_d(f, "p50_ratio");
    c.p99_ratio = field_d(f, "p99_ratio");
  }
  c.has_fault = field_i(f, "fault") != 0;
  if (c.has_fault) {
    c.blackhole_s = field_d(f, "blackhole_s");
    c.detect_ms = field_d(f, "detect_ms", -1);
    c.outage_ms = field_d(f, "outage_ms", -1);
    c.blackhole_drops = field_i(f, "blackhole_drops");
    c.gray_drops = field_i(f, "gray_drops");
    c.corrupt_drops = field_i(f, "corrupt_drops");
    c.rescued_flows = static_cast<std::size_t>(field_i(f, "rescued_flows"));
    c.goodput_recovery = field_d(f, "goodput_recovery");
    c.undetected_gray_windows =
        static_cast<int>(field_i(f, "undetected_gray"));
    c.fault_outages = static_cast<std::size_t>(field_i(f, "ctrl_outages"));
    c.fault_completed =
        static_cast<std::size_t>(field_i(f, "fault_completed"));
    c.fault_flows = static_cast<std::size_t>(field_i(f, "fault_flows"));
  }
  return c;
}

// --- rng-scale hybrid tier ---------------------------------------------------
// Skewed workload for the 10k-100k-switch hybrid cells (the AWS "RNG" design
// point): `hot_flows` flows fan in to the servers of the first `hot_tors`
// ToRs — the congested region the auto cut should find — plus `bg_flows`
// uniform background flows that stay fluid. Generated directly as a flow
// list: a dense RackTm would be O(racks^2) at this scale. Deterministic in
// (seed) alone, so cells are byte-identical for any --jobs split.
inline std::vector<workload::FlowSpec> rng_tier_flows(
    const topo::Graph& g, std::uint64_t seed, int hot_tors, int hot_flows,
    int bg_flows, std::int64_t bytes, Time arrival_window) {
  Rng rng(splitmix64(seed ^ 0x726e675fULL));
  std::vector<topo::HostId> hot;
  for (topo::NodeId t = 0; t < g.num_switches() && t < hot_tors; ++t)
    for (int s = 0; s < g.servers(t); ++s)
      hot.push_back(g.first_host_of(t) + s);
  const auto hosts = static_cast<std::uint64_t>(g.total_servers());
  std::vector<workload::FlowSpec> specs;
  specs.reserve(static_cast<std::size_t>(hot_flows + bg_flows));
  const auto draw_start = [&] {
    return static_cast<Time>(
        rng.uniform(static_cast<std::uint64_t>(arrival_window)));
  };
  for (int i = 0; i < hot_flows; ++i) {
    const auto dst = hot[rng.uniform(hot.size())];
    auto src = static_cast<topo::HostId>(rng.uniform(hosts));
    if (src == dst) src = static_cast<topo::HostId>((src + 1) % hosts);
    specs.push_back(workload::FlowSpec{src, dst, bytes, draw_start()});
  }
  for (int i = 0; i < bg_flows; ++i) {
    auto src = static_cast<topo::HostId>(rng.uniform(hosts));
    auto dst = static_cast<topo::HostId>(rng.uniform(hosts));
    if (dst == src) dst = static_cast<topo::HostId>((dst + 1) % hosts);
    specs.push_back(workload::FlowSpec{src, dst, bytes, draw_start()});
  }
  return specs;
}

// Copies a HybridResult into a journal-round-trippable cell.
inline BenchJson::Cell hybrid_cell(const std::string& label,
                                   const core::HybridResult& r) {
  BenchJson::Cell c;
  c.label = label;
  c.events = r.packet_events;
  c.intra_jobs = r.intra_jobs;
  c.table_build_s = r.table_build_s;
  c.has_fct = true;
  c.flows = r.flows;
  c.completed = r.completed;
  c.p50_ms = r.median_ms();
  c.p99_ms = r.p99_ms();
  c.drops = r.queue_drops;
  c.retransmits = r.retransmits;
  c.has_hybrid = true;
  c.result_hash = r.result_hash;
  c.fluid_windows = r.fluid_windows;
  c.fluid_solves = r.fluid_solves;
  c.fluid_solves_skipped = r.fluid_solves_skipped;
  c.internal_flows = r.internal_flows;
  c.boundary_flows = r.boundary_flows;
  c.external_flows = r.external_flows;
  c.region_switches = r.region_switches;
  c.cut_links = r.cut_links;
  return c;
}

// A hybrid cell plus the whole-network fault-tolerance metrics
// (bench_hybrid --faults).
inline BenchJson::Cell hybrid_fault_cell(const std::string& label,
                                         const core::HybridResult& r,
                                         int failed_links) {
  BenchJson::Cell c = hybrid_cell(label, r);
  c.has_hybrid_fault = true;
  c.failed_links = failed_links;
  c.stalled_flows = r.stalled_flows;
  c.boundary_repins = r.boundary_repins;
  c.fluid_outages = r.fluid_outages;
  c.fluid_blackhole_s = r.fluid_blackhole_seconds;
  c.stalled_s = r.stalled_seconds;
  c.goodput_recovery = r.goodput_recovery;
  return c;
}

// Everything scenario-shaped that changes cell results; benches append
// their own sweep-specific knobs before handing it to ResumableSweep.
inline std::string base_config_sig(const Flags& flags) {
  const core::Scenario s = scenario_from(flags);
  std::string sig = "x=" + std::to_string(s.x) + " y=" + std::to_string(s.y) +
                    " m=" + std::to_string(s.dring_supernodes) +
                    " seed=" + std::to_string(s.seed) +
                    " intra=" + std::to_string(intra_jobs_from(flags)) +
                    " scale=";
  sig += flags.paper_scale() ? "paper" : "medium";
  return sig;
}

// Per-sweep crash-safety state: the journal of finished cells, per-cell
// checkpoint paths, and the CheckpointSpec each running cell threads into
// its experiment. Flags: --resume, --audit, --checkpoint_ms plus the
// retry_policy_from knobs.
class ResumableSweep {
 public:
  ResumableSweep(const std::string& bench, const Flags& flags,
                 const std::string& config_sig)
      : resume_(flags.get_bool("resume", false)),
        audit_(flags.get_bool("audit", false)),
        checkpoint_ms_(flags.get_double("checkpoint_ms", 0)),
        policy_(retry_policy_from(flags)),
        journal_(flags.get("json_out", "BENCH_" + bench + ".json") +
                     ".sweep.journal",
                 bench, config_sig, resume_) {}

  const util::RetryPolicy& policy() const noexcept { return policy_; }
  util::SweepJournal& journal() noexcept { return journal_; }
  bool resuming() const noexcept { return resume_; }

  // Periodic snapshot files are only worth their write cost when the user
  // asked for resumability; the audit/cancel/progress hooks are free of
  // them and always on.
  bool checkpoints_enabled() const noexcept {
    return resume_ || checkpoint_ms_ > 0;
  }

  std::string checkpoint_path(std::size_t i) const {
    return journal_.path() + ".cell" + std::to_string(i) + ".ckpt";
  }

  sim::CheckpointSpec spec_for(std::size_t i, util::CellContext& ctx) const {
    sim::CheckpointSpec spec;
    if (checkpoints_enabled()) spec.path = checkpoint_path(i);
    spec.resume = resume_;
    spec.audit = audit_;
    // --checkpoint_ms is wall-agnostic sim time (Time is picoseconds).
    spec.interval = static_cast<Time>(checkpoint_ms_ * 1e9);
    spec.cancel = [&ctx] { return ctx.canceled(); };
    spec.progress = [&ctx](std::uint64_t events) { ctx.heartbeat(events); };
    return spec;
  }

  // After a sweep completes (every cell ok or permanently failed — not
  // interrupted), its results live in the BENCH JSON; drop the recovery
  // artifacts so a later run starts clean. Beyond the cell checkpoints
  // themselves, a SIGKILL can land inside atomic_write_file and orphan a
  // "<ckpt>.tmp.<pid>" temp file whose pid belongs to the dead run, so
  // sweep the directory for anything prefixed by the journal name.
  void finish(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
      util::remove_file(checkpoint_path(i));
    namespace fs = std::filesystem;
    const fs::path journal(journal_.path());
    const fs::path dir =
        journal.has_parent_path() ? journal.parent_path() : fs::path(".");
    const std::string prefix = journal.filename().string() + ".";
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      const std::string name = it->path().filename().string();
      if (name.compare(0, prefix.size(), prefix) == 0) {
        std::error_code rm_ec;  // best-effort: a lost race is fine
        fs::remove(it->path(), rm_ec);
      }
    }
    journal_.remove();
  }

 private:
  bool resume_;
  bool audit_;
  double checkpoint_ms_;
  util::RetryPolicy policy_;
  util::SweepJournal journal_;
};

// Self-healing, resumable fan-out: journaled cells are returned as-is
// (skipped), the rest run under the watchdog/retry policy, and every cell
// that finishes (ok or permanently failed) is journaled. fn(i, ctx) must
// return a fully-populated BenchJson::Cell except wall_s/attempts/status,
// which this wrapper owns. Results come back in index order.
template <typename Fn>
std::vector<BenchJson::Cell> run_resumable(core::Runner& runner,
                                           std::size_t n,
                                           ResumableSweep& sweep, Fn&& fn) {
  // Snapshot the journal hits before the parallel map: get() is not safe
  // against a concurrent record(), but std::map nodes stay put, so the
  // prefetched pointers survive later inserts.
  std::vector<const util::SweepJournal::Fields*> done(n, nullptr);
  for (std::size_t i = 0; i < n; ++i)
    done[i] = sweep.journal().get("cell" + std::to_string(i));

  util::Watchdog dog(n, sweep.policy());
  return runner.map(n, [&](std::size_t i) {
    if (done[i]) return cell_from_fields(*done[i]);
    const std::string label = "cell" + std::to_string(i);
    const auto start = std::chrono::steady_clock::now();
    auto out = util::run_cell_attempts(
        dog.slot(i), sweep.policy(), label,
        [&](util::CellContext& ctx) { return fn(i, ctx); });
    BenchJson::Cell cell = std::move(out.value);
    cell.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    cell.attempts = out.status.attempts;
    switch (out.status.state) {
      case util::CellState::kOk:
        break;
      case util::CellState::kFailed:
        cell.status = "failed";
        cell.error = out.status.error;
        if (cell.label.empty()) cell.label = label;
        break;
      case util::CellState::kInterrupted:
        // Not journaled: --resume re-runs it from its last checkpoint.
        cell.status = "interrupted";
        if (cell.label.empty()) cell.label = label;
        return cell;
    }
    sweep.journal().record(label, cell_to_fields(cell));
    return cell;
  });
}

}  // namespace spineless::bench
