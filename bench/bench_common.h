// Shared helpers for the figure/table reproduction binaries.
//
// Every bench supports two scales:
//  * default  — a medium configuration (same switch roles, 3:1
//    oversubscription, ~1/2 the port count) that finishes in seconds;
//  * --scale=paper or SPINELESS_PAPER_SCALE=1 — the paper's §5.1
//    configuration (leaf-spine(48,16), 3072 servers, 12-supernode DRing).
//
// Every bench also supports --jobs=N (default: SPINELESS_JOBS or hardware
// concurrency): independent cells fan out over a core::Runner, and output
// is byte-identical for every N because cells derive their randomness from
// their index and results are collected in index order. Each bench writes
// a machine-readable BENCH_<name>.json next to the working directory
// (override the path with --json_out=...).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/fct_experiment.h"
#include "core/runner.h"
#include "core/scenario.h"
#include "util/error.h"
#include "util/flags.h"
#include "util/json.h"

namespace spineless::bench {

// Process-start timestamp for total_wall_s. A namespace-scope inline
// constant so it is captured during static initialization — BenchJson used
// to start this clock at its own construction, after every cell had
// already run, reporting totals near zero.
inline const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

inline core::Scenario scenario_from(const Flags& flags) {
  core::Scenario s;
  if (flags.paper_scale()) {
    s = core::Scenario::paper();
  } else {
    // Medium default: leaf-spine(24, 8) -> 32 racks, 768 servers; flat
    // equivalents use the same 48 switches... (x + 2y = 40 switches).
    s.x = 24;
    s.y = 8;
    s.dring_supernodes = 10;
  }
  s.x = static_cast<int>(flags.get_int("x", s.x));
  s.y = static_cast<int>(flags.get_int("y", s.y));
  s.dring_supernodes = static_cast<int>(
      flags.get_int("supernodes", s.dring_supernodes));
  s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  return s;
}

inline int jobs_from(const Flags& flags) {
  const auto jobs = flags.get_int("jobs", core::default_jobs());
  return jobs < 1 ? 1 : static_cast<int>(jobs);
}

// --intra_jobs=N: shards per simulated cell (sharded conservative engine;
// results are byte-identical for every N). Default 1 = serial engine.
inline int intra_jobs_from(const Flags& flags) {
  const auto intra = flags.get_int("intra_jobs", 1);
  return intra < 1 ? 1 : static_cast<int>(intra);
}

// Outer (cell-level) worker count once each cell takes intra_jobs threads:
// --jobs is the total thread budget, split as outer x intra.
inline int outer_jobs(const Flags& flags) {
  return std::max(1, jobs_from(flags) / intra_jobs_from(flags));
}

inline void print_header(const char* title, const core::Scenario& s,
                         const Flags& flags) {
  std::printf("== %s ==\n", title);
  std::printf(
      "scenario: leaf-spine(x=%d, y=%d) | %d switches x %d ports | "
      "%d servers | DRing m=%d | scale=%s | jobs=%d\n\n",
      s.x, s.y, s.num_switches(), s.ports_per_switch(),
      s.leaf_spine_servers(), s.dring_supernodes,
      flags.paper_scale() ? "paper" : "medium", jobs_from(flags));
}

// A cell result plus the wall-clock seconds that cell took on its worker.
template <typename R>
struct Timed {
  R value{};
  double wall_s = 0;
};

// Fans fn(0..n-1) over the runner, wall-timing each cell. Results come
// back in index order regardless of jobs (see core::Runner's determinism
// contract), so drivers print them exactly as a serial loop would have.
template <typename Fn>
auto sweep(core::Runner& runner, std::size_t n, Fn&& fn)
    -> std::vector<Timed<std::invoke_result_t<Fn&, std::size_t>>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  return runner.map(n, [&fn](std::size_t i) {
    const auto start = std::chrono::steady_clock::now();
    Timed<R> timed;
    timed.value = fn(i);
    timed.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return timed;
  });
}

// Accumulates per-cell rows and writes BENCH_<name>.json on write():
//   {"bench": ..., "scale": ..., "jobs": N, "total_wall_s": ...,
//    "cells": [{"label": ..., "wall_s": ..., "events": ...,
//               "events_per_sec": ..., "fct": {...}}, ...]}
class BenchJson {
 public:
  struct Cell {
    std::string label;
    double wall_s = 0;
    std::uint64_t events = 0;
    int intra_jobs = 1;
    double table_build_s = 0;
    bool has_fct = false;
    std::size_t flows = 0;
    std::size_t completed = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    std::int64_t drops = 0;
    std::int64_t retransmits = 0;
    // Fault-injection cells (bench_failures part 3): degradation metrics
    // from the FaultInjector / DegradationMonitor pair.
    bool has_fault = false;
    double blackhole_s = 0;
    double detect_ms = -1;  // first outage: BFD detection delay
    double outage_ms = -1;  // first outage: until tables routed around it
    std::int64_t blackhole_drops = 0;
    std::int64_t gray_drops = 0;
    std::int64_t corrupt_drops = 0;
    std::size_t rescued_flows = 0;   // completed only thanks to an RTO
    double goodput_recovery = 0;     // post-restore / pre-fault goodput
    int undetected_gray_windows = 0;
  };

  BenchJson(std::string name, const Flags& flags)
      : name_(std::move(name)),
        scale_(flags.get("scale", flags.paper_scale() ? "paper" : "medium")),
        jobs_(jobs_from(flags)),
        path_(flags.get("json_out", "BENCH_" + name_ + ".json")) {}

  void add(Cell cell) { cells_.push_back(std::move(cell)); }

  // Convenience: a cell backed by a timed FctResult.
  void add_fct(const std::string& label,
               const Timed<core::FctResult>& timed) {
    const core::FctResult& r = timed.value;
    Cell c;
    c.label = label;
    c.wall_s = timed.wall_s;
    c.events = r.events;
    c.intra_jobs = r.intra_jobs;
    c.table_build_s = r.table_build_s;
    c.has_fct = true;
    c.flows = r.flows;
    c.completed = r.completed;
    c.p50_ms = r.median_ms();
    c.p99_ms = r.p99_ms();
    c.drops = r.queue_drops;
    c.retransmits = r.retransmits;
    add(std::move(c));
  }

  // Writes the file; prints a one-line pointer so users find the artifact.
  void write() const {
    // total_wall_s counts from process start: with parallel cells it is
    // NOT the sum of cell times, but it can never be less than the
    // longest single cell.
    const double total_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      kProcessStart)
            .count();
    double max_cell_wall_s = 0;
    for (const Cell& c : cells_)
      max_cell_wall_s = std::max(max_cell_wall_s, c.wall_s);
    SPINELESS_CHECK_MSG(total_wall_s >= max_cell_wall_s,
                        "total_wall_s below the longest cell — the bench "
                        "clock must start at process start");
    JsonWriter w;
    w.begin_object();
    w.kv("bench", name_);
    w.kv("scale", scale_);
    w.kv("jobs", jobs_);
    w.kv("total_wall_s", total_wall_s);
    w.key("cells");
    w.begin_array();
    for (const Cell& c : cells_) {
      w.begin_object();
      w.kv("label", c.label);
      w.kv("wall_s", c.wall_s);
      w.kv("events", c.events);
      w.kv("events_per_sec",
           c.wall_s > 0 ? static_cast<double>(c.events) / c.wall_s : 0.0);
      w.kv("intra_jobs", c.intra_jobs);
      if (c.table_build_s > 0) w.kv("table_build_s", c.table_build_s);
      if (c.has_fct) {
        w.key("fct");
        w.begin_object();
        w.kv("flows", static_cast<std::int64_t>(c.flows));
        w.kv("completed", static_cast<std::int64_t>(c.completed));
        w.kv("p50_ms", c.p50_ms);
        w.kv("p99_ms", c.p99_ms);
        w.kv("drops", c.drops);
        w.kv("retransmits", c.retransmits);
        w.end_object();
      }
      if (c.has_fault) {
        w.key("fault");
        w.begin_object();
        w.kv("blackhole_s", c.blackhole_s);
        w.kv("detect_ms", c.detect_ms);
        w.kv("outage_ms", c.outage_ms);
        w.kv("blackhole_drops", c.blackhole_drops);
        w.kv("gray_drops", c.gray_drops);
        w.kv("corrupt_drops", c.corrupt_drops);
        w.kv("rescued_flows", static_cast<std::int64_t>(c.rescued_flows));
        w.kv("goodput_recovery", c.goodput_recovery);
        w.kv("undetected_gray_windows", c.undetected_gray_windows);
        w.end_object();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    if (write_json_file(path_, w))
      std::printf("\nwrote %s (%zu cells)\n", path_.c_str(), cells_.size());
    else
      std::fprintf(stderr, "warning: could not write %s\n", path_.c_str());
  }

 private:
  std::string name_;
  std::string scale_;
  int jobs_;
  std::string path_;
  std::vector<Cell> cells_;
};

}  // namespace spineless::bench
