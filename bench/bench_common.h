// Shared helpers for the figure/table reproduction binaries.
//
// Every bench supports two scales:
//  * default  — a medium configuration (same switch roles, 3:1
//    oversubscription, ~1/2 the port count) that finishes in seconds;
//  * --scale=paper or SPINELESS_PAPER_SCALE=1 — the paper's §5.1
//    configuration (leaf-spine(48,16), 3072 servers, 12-supernode DRing).
#pragma once

#include <cstdio>
#include <string>

#include "core/scenario.h"
#include "util/flags.h"

namespace spineless::bench {

inline core::Scenario scenario_from(const Flags& flags) {
  core::Scenario s;
  if (flags.paper_scale()) {
    s = core::Scenario::paper();
  } else {
    // Medium default: leaf-spine(24, 8) -> 32 racks, 768 servers; flat
    // equivalents use the same 48 switches... (x + 2y = 40 switches).
    s.x = 24;
    s.y = 8;
    s.dring_supernodes = 10;
  }
  s.x = static_cast<int>(flags.get_int("x", s.x));
  s.y = static_cast<int>(flags.get_int("y", s.y));
  s.dring_supernodes = static_cast<int>(
      flags.get_int("supernodes", s.dring_supernodes));
  s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  return s;
}

inline void print_header(const char* title, const core::Scenario& s,
                         const Flags& flags) {
  std::printf("== %s ==\n", title);
  std::printf(
      "scenario: leaf-spine(x=%d, y=%d) | %d switches x %d ports | "
      "%d servers | DRing m=%d | scale=%s\n\n",
      s.x, s.y, s.num_switches(), s.ports_per_switch(),
      s.leaf_spine_servers(), s.dring_supernodes,
      flags.paper_scale() ? "paper" : "medium");
}

}  // namespace spineless::bench
