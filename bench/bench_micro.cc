// M1 (DESIGN.md): google-benchmark micro benchmarks for the hot paths —
// routing-table computation, path enumeration, BGP convergence, max-min
// water-filling, and raw packet-simulator event throughput.
//
// `bench_micro --json=PATH` bypasses google-benchmark and runs the
// simulator event-throughput scenario once, writing a machine-readable
// summary (events/sec, ns/event, peak RSS) — the tier-1 smoke target and
// the number the performance roadmap tracks. `--intra_jobs=N` runs the
// same scenario on the sharded reactor engine (byte-identical event
// stream; the events/s delta is the engine's parallel overhead) and adds
// the engine's self-metrics to the JSON cell; serial output is unchanged.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "ctrl/bgp.h"
#include "flowsim/maxmin.h"
#include "routing/ecmp.h"
#include "routing/paths.h"
#include "routing/vrf.h"
#include "sim/sharded_engine.h"
#include "sim/tcp.h"
#include "topo/builders.h"
#include "util/json.h"
#include "util/rng.h"

namespace spineless {
namespace {

void BM_EcmpTableCompute(benchmark::State& state) {
  const auto d = topo::make_dring(static_cast<int>(state.range(0)), 4, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::EcmpTable::compute(d.graph));
  }
  state.SetLabel(std::to_string(d.graph.num_switches()) + " switches");
}
BENCHMARK(BM_EcmpTableCompute)->Arg(5)->Arg(10)->Arg(20);

void BM_VrfTableCompute(benchmark::State& state) {
  const auto d = topo::make_dring(10, 4, 8);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::VrfTable::compute(d.graph, k));
  }
}
BENCHMARK(BM_VrfTableCompute)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_ShortestUnionEnumeration(benchmark::State& state) {
  const auto d = topo::make_dring(10, 4, 8);
  const topo::Graph& g = d.graph;
  for (auto _ : state) {
    for (topo::NodeId b = 1; b < 20; ++b) {
      benchmark::DoNotOptimize(
          routing::shortest_union_paths(g, 0, b, 2, 4096));
    }
  }
}
BENCHMARK(BM_ShortestUnionEnumeration);

void BM_BgpConvergence(benchmark::State& state) {
  const auto d = topo::make_dring(static_cast<int>(state.range(0)), 2, 4);
  for (auto _ : state) {
    ctrl::BgpVrfNetwork bgp(d.graph, 2);
    benchmark::DoNotOptimize(bgp.converge());
  }
  state.SetLabel(std::to_string(d.graph.num_switches()) + " routers");
}
BENCHMARK(BM_BgpConvergence)->Arg(5)->Arg(8)->Arg(12);

void BM_MaxMinWaterFill(benchmark::State& state) {
  Rng rng(1);
  const int resources = 500;
  std::vector<double> caps(resources, 10e9);
  flowsim::MaxMinProblem problem(caps);
  for (int f = 0; f < static_cast<int>(state.range(0)); ++f) {
    std::vector<int> route;
    for (int h = 0; h < 4; ++h)
      route.push_back(static_cast<int>(rng.uniform(resources)));
    problem.add_flow(std::move(route));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.solve());
  }
}
BENCHMARK(BM_MaxMinWaterFill)->Arg(1000)->Arg(5000);

// End-to-end simulator throughput: events/sec driving TCP flows across a
// DRing. The counter is the figure of merit.
void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    const auto d = topo::make_dring(5, 2, 4);
    sim::Simulator simulator;
    sim::NetworkConfig cfg;
    sim::Network net(d.graph, cfg);
    sim::FlowDriver driver(net, sim::TcpConfig{});
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
      const auto src = static_cast<topo::HostId>(
          rng.uniform(static_cast<std::uint64_t>(d.graph.total_servers())));
      auto dst = static_cast<topo::HostId>(
          rng.uniform(static_cast<std::uint64_t>(d.graph.total_servers())));
      if (dst == src) dst = (dst + 1) % d.graph.total_servers();
      driver.add_flow(simulator, src, dst, 200'000, 0);
    }
    simulator.run_until(units::kSecond);
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(simulator.events_processed()),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_SimulatorEventThroughput);

// The BM_SimulatorEventThroughput scenario, run outside the
// google-benchmark harness so the smoke target stays fast and emits one
// unambiguous number per metric. One warmup run primes caches and the
// allocator; the best of the timed runs is reported (the standard smoke
// convention — the minimum-interference run is the repeatable one on a
// shared machine).
int run_json_smoke(const std::string& path, int intra_jobs) {
  constexpr int kTimedRuns = 3;
  std::uint64_t events = 0;
  std::size_t completed = 0;
  double wall_s = 0;
  sim::ShardedEngine::Metrics metrics;
  for (int run = 0; run < 1 + kTimedRuns; ++run) {
    const auto d = topo::make_dring(5, 2, 4);
    sim::NetworkConfig cfg;
    cfg.intra_jobs = intra_jobs;
    sim::Network net(d.graph, cfg);
    sim::FlowDriver driver(net, sim::TcpConfig{});
    Rng rng(7);
    sim::Simulator serial;
    std::unique_ptr<sim::ShardedEngine> sharded;
    if (net.sharded()) sharded = std::make_unique<sim::ShardedEngine>(net);
    sim::Simulator& front = sharded ? sharded->control() : serial;
    for (int i = 0; i < 50; ++i) {
      const auto src = static_cast<topo::HostId>(
          rng.uniform(static_cast<std::uint64_t>(d.graph.total_servers())));
      auto dst = static_cast<topo::HostId>(
          rng.uniform(static_cast<std::uint64_t>(d.graph.total_servers())));
      if (dst == src) dst = (dst + 1) % d.graph.total_servers();
      driver.add_flow(front, src, dst, 200'000, 0);
    }

    const auto t0 = std::chrono::steady_clock::now();
    if (sharded) {
      sharded->run_until(units::kSecond);
    } else {
      serial.run_until(units::kSecond);
    }
    const double run_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (run == 0) continue;  // warmup
    if (wall_s == 0 || run_s < wall_s) {
      wall_s = run_s;
      events = sharded ? sharded->events_processed() : serial.events_processed();
      completed = driver.completed_flows();
      if (sharded) metrics = sharded->metrics();
    }
  }

  const double events_per_sec =
      wall_s > 0 ? static_cast<double>(events) / wall_s : 0;
  const double ns_per_event =
      events > 0 ? wall_s * 1e9 / static_cast<double>(events) : 0;
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);  // ru_maxrss is in KiB on Linux

  JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("micro");
  w.key("scenario");
  w.value("simulator_event_throughput dring(5,2,4) 50 flows x 200KB, 1s");
  w.key("events");
  w.value(static_cast<std::int64_t>(events));
  w.key("wall_s");
  w.value(wall_s);
  w.key("events_per_sec");
  w.value(events_per_sec);
  w.key("ns_per_event");
  w.value(ns_per_event);
  w.key("peak_rss_kib");
  w.value(static_cast<std::int64_t>(ru.ru_maxrss));
  w.key("completed_flows");
  w.value(static_cast<std::int64_t>(completed));
  w.key("timed_runs");
  w.value(static_cast<std::int64_t>(kTimedRuns));
  if (intra_jobs > 1) {
    // Engine self-metrics (sharded runs only, so serial JSON is stable).
    w.key("intra_jobs");
    w.value(static_cast<std::int64_t>(intra_jobs));
    w.key("engine_windows");
    w.value(static_cast<std::int64_t>(metrics.windows));
    w.key("engine_ring_handoffs");
    w.value(static_cast<std::int64_t>(metrics.ring_handoffs));
    w.key("engine_max_ring_occupancy");
    w.value(static_cast<std::int64_t>(metrics.max_ring_occupancy));
    w.key("engine_spin_waits");
    w.value(static_cast<std::int64_t>(metrics.spin_waits));
    w.key("engine_central_plans");
    w.value(static_cast<std::int64_t>(metrics.central_plans));
  }
  w.end_object();
  if (!write_json_file(path, w)) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("%zu events in %.3f s (%.2fM events/s, %.1f ns/event, "
              "peak RSS %ld KiB); wrote %s\n",
              static_cast<std::size_t>(events), wall_s, events_per_sec / 1e6,
              ns_per_event, static_cast<long>(ru.ru_maxrss), path.c_str());
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int intra_jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--intra_jobs=", 13) == 0)
      intra_jobs = std::atoi(argv[i] + 13);
  }
  if (json_path != nullptr)
    return spineless::run_json_smoke(json_path, intra_jobs);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
