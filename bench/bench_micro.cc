// M1 (DESIGN.md): google-benchmark micro benchmarks for the hot paths —
// routing-table computation, path enumeration, BGP convergence, max-min
// water-filling, and raw packet-simulator event throughput.
#include <benchmark/benchmark.h>

#include "ctrl/bgp.h"
#include "flowsim/maxmin.h"
#include "routing/ecmp.h"
#include "routing/paths.h"
#include "routing/vrf.h"
#include "sim/tcp.h"
#include "topo/builders.h"
#include "util/rng.h"

namespace spineless {
namespace {

void BM_EcmpTableCompute(benchmark::State& state) {
  const auto d = topo::make_dring(static_cast<int>(state.range(0)), 4, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::EcmpTable::compute(d.graph));
  }
  state.SetLabel(std::to_string(d.graph.num_switches()) + " switches");
}
BENCHMARK(BM_EcmpTableCompute)->Arg(5)->Arg(10)->Arg(20);

void BM_VrfTableCompute(benchmark::State& state) {
  const auto d = topo::make_dring(10, 4, 8);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::VrfTable::compute(d.graph, k));
  }
}
BENCHMARK(BM_VrfTableCompute)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_ShortestUnionEnumeration(benchmark::State& state) {
  const auto d = topo::make_dring(10, 4, 8);
  const topo::Graph& g = d.graph;
  for (auto _ : state) {
    for (topo::NodeId b = 1; b < 20; ++b) {
      benchmark::DoNotOptimize(
          routing::shortest_union_paths(g, 0, b, 2, 4096));
    }
  }
}
BENCHMARK(BM_ShortestUnionEnumeration);

void BM_BgpConvergence(benchmark::State& state) {
  const auto d = topo::make_dring(static_cast<int>(state.range(0)), 2, 4);
  for (auto _ : state) {
    ctrl::BgpVrfNetwork bgp(d.graph, 2);
    benchmark::DoNotOptimize(bgp.converge());
  }
  state.SetLabel(std::to_string(d.graph.num_switches()) + " routers");
}
BENCHMARK(BM_BgpConvergence)->Arg(5)->Arg(8)->Arg(12);

void BM_MaxMinWaterFill(benchmark::State& state) {
  Rng rng(1);
  const int resources = 500;
  std::vector<double> caps(resources, 10e9);
  flowsim::MaxMinProblem problem(caps);
  for (int f = 0; f < static_cast<int>(state.range(0)); ++f) {
    std::vector<int> route;
    for (int h = 0; h < 4; ++h)
      route.push_back(static_cast<int>(rng.uniform(resources)));
    problem.add_flow(std::move(route));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.solve());
  }
}
BENCHMARK(BM_MaxMinWaterFill)->Arg(1000)->Arg(5000);

// End-to-end simulator throughput: events/sec driving TCP flows across a
// DRing. The counter is the figure of merit.
void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    const auto d = topo::make_dring(5, 2, 4);
    sim::Simulator simulator;
    sim::NetworkConfig cfg;
    sim::Network net(d.graph, cfg);
    sim::FlowDriver driver(net, sim::TcpConfig{});
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
      const auto src = static_cast<topo::HostId>(
          rng.uniform(static_cast<std::uint64_t>(d.graph.total_servers())));
      auto dst = static_cast<topo::HostId>(
          rng.uniform(static_cast<std::uint64_t>(d.graph.total_servers())));
      if (dst == src) dst = (dst + 1) % d.graph.total_servers();
      driver.add_flow(simulator, src, dst, 200'000, 0);
    }
    simulator.run_until(units::kSecond);
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(simulator.events_processed()),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace
}  // namespace spineless
