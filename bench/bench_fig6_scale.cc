// Figure 6 reproduction (E3 in DESIGN.md): effect of scale. 99th-percentile
// FCT of DRing relative to an equal-equipment RRG under uniform traffic, as
// supernodes are added. Paper config: 6 ToRs per supernode, 60-port
// switches with 36 server links (network degree 24); racks sweep 40 -> 90.
// The default medium config halves the port counts (n=3, 30 ports,
// 18 servers, degree 12) and sweeps racks 15 -> 36.
//
// Expected shape (paper Fig. 6): ratio near (or below) 1 at small scale,
// rising clearly above 1 as racks are added — DRing's O(1) bisection
// cannot keep up while the RRG's grows.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "util/table.h"
#include "workload/flows.h"

namespace spineless {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool paper = flags.paper_scale();
  const int tors_per_supernode =
      static_cast<int>(flags.get_int("n", paper ? 6 : 3));
  const int servers_per_tor =
      static_cast<int>(flags.get_int("servers", paper ? 36 : 18));
  const int net_degree = 4 * tors_per_supernode;
  const int ports = net_degree + servers_per_tor;
  const int m_lo = static_cast<int>(flags.get_int("m_lo", paper ? 7 : 5));
  const int m_hi = static_cast<int>(flags.get_int("m_hi", paper ? 15 : 15));
  // Per-host offered load; chosen so the DRing approaches its (constant)
  // bisection limit toward the top of the sweep.
  const double per_host_bps = flags.get_double("per_host_gbps", 3.0) * 1e9;

  std::printf("== Figure 6: DRing vs RRG, effect of scale ==\n");
  std::printf(
      "%d ToRs/supernode, %d-port switches, %d server links (degree %d), "
      "%.1f Gbps offered per host, scale=%s\n\n",
      tors_per_supernode, ports, servers_per_tor, net_degree,
      per_host_bps / 1e9, paper ? "paper" : "medium");

  Table t({"racks", "hosts", "DRing p99 (ms)", "RRG p99 (ms)",
           "FCT(DRing)/FCT(RRG)"});
  for (int m = m_lo; m <= m_hi; ++m) {
    const topo::DRing dring =
        topo::make_dring(m, tors_per_supernode, servers_per_tor, ports);
    const int racks = dring.graph.num_switches();
    const topo::Graph rrg =
        topo::make_rrg(racks, net_degree, servers_per_tor,
                       /*seed=*/static_cast<std::uint64_t>(m) * 7 + 1);

    core::FctConfig cfg;
    cfg.flowgen.offered_load_bps =
        per_host_bps * dring.graph.total_servers();
    cfg.flowgen.window = flags.get_int("window_ms", 2) * units::kMillisecond;
    cfg.seed = 3;

    cfg.net.mode = sim::RoutingMode::kShortestUnion;
    const auto dr = core::run_fct_experiment(
        dring.graph, workload::RackTm::uniform(dring.graph), cfg);
    const auto rr = core::run_fct_experiment(
        rrg, workload::RackTm::uniform(rrg), cfg);

    t.add_row({std::to_string(racks),
               std::to_string(dring.graph.total_servers()),
               Table::fmt(dr.p99_ms()), Table::fmt(rr.p99_ms()),
               Table::fmt(dr.p99_ms() / rr.p99_ms(), 2)});
    std::fprintf(stderr, "  racks=%d done (DRing drops=%ld, RRG drops=%ld)\n",
                 racks, static_cast<long>(dr.queue_drops),
                 static_cast<long>(rr.queue_drops));
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
