// Figure 6 reproduction (E3 in DESIGN.md): effect of scale. 99th-percentile
// FCT of DRing relative to an equal-equipment RRG under uniform traffic, as
// supernodes are added. Paper config: 6 ToRs per supernode, 60-port
// switches with 36 server links (network degree 24); racks sweep 40 -> 90.
// The default medium config halves the port counts (n=3, 30 ports,
// 18 servers, degree 12) and sweeps racks 15 -> 36.
//
// Expected shape (paper Fig. 6): ratio near (or below) 1 at small scale,
// rising clearly above 1 as racks are added — DRing's O(1) bisection
// cannot keep up while the RRG's grows.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "core/hybrid_experiment.h"
#include "util/table.h"
#include "workload/flows.h"

namespace spineless {
namespace {

// --scale=rng: the AWS "RNG: Flat Datacenter Networks at Scale" design
// point — 10k-100k switches, far past what pure packet simulation can
// finish — swept as hybrid packet/fluid cells (auto-selected hot region at
// packet fidelity, fluid max-min elsewhere). One DRing and one
// equal-equipment RRG cell per m, through the same ResumableSweep recovery
// machinery as the packet tiers; --m_hi truncates the sweep (e.g.
// --m_hi=2500 runs only the 10k-switch pair).
int run_rng_tier(const Flags& flags) {
  const int tors_per_supernode = static_cast<int>(flags.get_int("n", 4));
  const int servers_per_tor = static_cast<int>(flags.get_int("servers", 2));
  const int net_degree = 4 * tors_per_supernode;
  const int ports = net_degree + servers_per_tor;
  const int m_hi = static_cast<int>(flags.get_int("m_hi", 25000));
  const std::vector<int> m_all = {2500, 5000, 12500, 25000};
  std::vector<int> ms;
  for (const int m : m_all)
    if (m <= m_hi) ms.push_back(m);
  SPINELESS_CHECK_MSG(!ms.empty(), "--m_hi below the smallest rng cell");

  const int intra_jobs = bench::intra_jobs_from(flags);
  const int jobs = bench::jobs_from(flags);
  const Time window = flags.get_int("window_ms", 2) * units::kMillisecond;
  const auto hot_flows = static_cast<int>(flags.get_int("hot_flows", 512));
  const auto bg_flows = static_cast<int>(flags.get_int("bg_flows", 256));
  const std::int64_t bytes = flags.get_int("flow_bytes", 250'000);
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  std::printf("== Figure 6, rng tier: hybrid DRing vs RRG at 10k-100k switches ==\n");
  std::printf(
      "%d ToRs/supernode, %d servers/ToR, degree %d | %d hot + %d bg flows "
      "x %lld B | jobs=%d, intra_jobs=%d\n\n",
      tors_per_supernode, servers_per_tor, net_degree, hot_flows, bg_flows,
      static_cast<long long>(bytes), jobs, intra_jobs);

  core::Runner runner(bench::outer_jobs(flags));
  const std::string config_sig =
      "rng n=" + std::to_string(tors_per_supernode) +
      " servers=" + std::to_string(servers_per_tor) +
      " m_hi=" + std::to_string(m_hi) + " hot=" + std::to_string(hot_flows) +
      " bg=" + std::to_string(bg_flows) + " bytes=" + std::to_string(bytes) +
      " window=" + std::to_string(static_cast<long long>(window)) +
      " seed=" + std::to_string(seed) +
      " intra=" + std::to_string(intra_jobs);
  bench::ResumableSweep sweep("fig6_scale", flags, config_sig);
  const auto n_cells = 2 * ms.size();
  const auto cells = bench::run_resumable(
      runner, n_cells, sweep, [&](std::size_t idx, util::CellContext& ctx) {
        const int m = ms[idx / 2];
        const bool is_rrg = idx % 2 != 0;
        core::HybridConfig cfg;
        cfg.fct.seed = seed;
        cfg.fct.flowgen.window = window;
        cfg.fct.drain_factor = 10.0;
        cfg.fct.net.mode = sim::RoutingMode::kShortestUnion;
        cfg.fct.net.intra_jobs = intra_jobs;
        cfg.fct.net.table_jobs = jobs;  // region tables build in parallel
        cfg.fct.checkpoint = sweep.spec_for(idx, ctx);
        cfg.region_mode = core::RegionMode::kAuto;
        cfg.auto_region_switches = 2 * tors_per_supernode;
        core::HybridResult r;
        if (!is_rrg) {
          const topo::DRing dring = topo::make_dring(
              m, tors_per_supernode, servers_per_tor, ports);
          const auto specs = bench::rng_tier_flows(
              dring.graph, seed, 2 * tors_per_supernode, hot_flows, bg_flows,
              bytes, window);
          r = core::run_hybrid_experiment_flows(dring.graph, specs, cfg);
        } else {
          const topo::Graph rrg = topo::make_rrg(
              m * tors_per_supernode, net_degree, servers_per_tor,
              /*seed=*/static_cast<std::uint64_t>(m) * 7 + 1);
          const auto specs = bench::rng_tier_flows(
              rrg, seed, 2 * tors_per_supernode, hot_flows, bg_flows, bytes,
              window);
          r = core::run_hybrid_experiment_flows(rrg, specs, cfg);
        }
        return bench::hybrid_cell(
            (is_rrg ? "RRG " : "DRing ") +
                std::to_string(m * tors_per_supernode) + "sw",
            r);
      });

  bench::BenchJson json("fig6_scale", flags);
  if (sweep.journal().loaded() > 0) json.mark_resumed();
  Table t({"switches", "family", "p50 (ms)", "p99 (ms)", "completed",
           "pkt events", "tables (s)"});
  for (std::size_t i = 0; i < n_cells; ++i) {
    const auto& c = cells[i];
    json.add(c);
    t.add_row({std::to_string(ms[i / 2] * tors_per_supernode),
               i % 2 != 0 ? "RRG" : "DRing",
               c.status == "ok" ? Table::fmt(c.p50_ms) : "(" + c.status + ")",
               c.status == "ok" ? Table::fmt(c.p99_ms) : "-",
               std::to_string(c.completed) + "/" + std::to_string(c.flows),
               std::to_string(c.events), Table::fmt(c.table_build_s, 2)});
  }
  std::printf("%s", t.to_string().c_str());
  if (bench::interrupted()) {
    json.mark_partial();
    json.write();
    std::fprintf(stderr,
                 "interrupted: journal + checkpoints kept; rerun with "
                 "--resume to finish\n");
    return 130;
  }
  json.write();
  sweep.finish(n_cells);
  return 0;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  if (flags.get("scale", "") == "rng") return run_rng_tier(flags);
  const bool paper = flags.paper_scale();
  // --scale=large: medium-shaped supernodes, but the sweep extends to
  // m=20 (120 racks) — single cells big enough that intra-cell sharding
  // (--intra_jobs) beats adding outer workers.
  const bool large = flags.get("scale", "") == "large";
  const int tors_per_supernode =
      static_cast<int>(flags.get_int("n", paper ? 6 : 3));
  const int servers_per_tor =
      static_cast<int>(flags.get_int("servers", paper ? 36 : 18));
  const int net_degree = 4 * tors_per_supernode;
  const int ports = net_degree + servers_per_tor;
  const int m_lo =
      static_cast<int>(flags.get_int("m_lo", paper ? 7 : (large ? 12 : 5)));
  const int m_hi =
      static_cast<int>(flags.get_int("m_hi", paper ? 15 : (large ? 20 : 15)));
  // Per-host offered load; chosen so the DRing approaches its (constant)
  // bisection limit toward the top of the sweep.
  const double per_host_bps = flags.get_double("per_host_gbps", 3.0) * 1e9;

  const int jobs = bench::jobs_from(flags);
  const int intra_jobs = bench::intra_jobs_from(flags);
  std::printf("== Figure 6: DRing vs RRG, effect of scale ==\n");
  std::printf(
      "%d ToRs/supernode, %d-port switches, %d server links (degree %d), "
      "%.1f Gbps offered per host, scale=%s, jobs=%d, intra_jobs=%d\n\n",
      tors_per_supernode, ports, servers_per_tor, net_degree,
      per_host_bps / 1e9, paper ? "paper" : (large ? "large" : "medium"),
      jobs, intra_jobs);

  const Time window =
      flags.get_int("window_ms", 2) * units::kMillisecond;

  // One cell per (m, topology-family): each cell builds its own graph, so
  // no shared state crosses workers. Cells run under the self-healing
  // policy; with --resume, finished cells come from the sweep journal and
  // in-flight ones restart from their last periodic checkpoint.
  const auto n_m = static_cast<std::size_t>(m_hi - m_lo + 1);
  core::Runner runner(bench::outer_jobs(flags));
  const std::string config_sig =
      "n=" + std::to_string(tors_per_supernode) +
      " servers=" + std::to_string(servers_per_tor) +
      " m_lo=" + std::to_string(m_lo) + " m_hi=" + std::to_string(m_hi) +
      " bps=" + std::to_string(static_cast<long long>(per_host_bps)) +
      " window=" + std::to_string(static_cast<long long>(window)) +
      " intra=" + std::to_string(intra_jobs);
  bench::ResumableSweep sweep("fig6_scale", flags, config_sig);
  const auto cells = bench::run_resumable(
      runner, 2 * n_m, sweep, [&](std::size_t idx, util::CellContext& ctx) {
        const int m = m_lo + static_cast<int>(idx / 2);
        const bool is_rrg = idx % 2 != 0;
        const topo::DRing dring =
            topo::make_dring(m, tors_per_supernode, servers_per_tor, ports);
        core::FctConfig cfg;
        cfg.flowgen.offered_load_bps =
            per_host_bps * dring.graph.total_servers();
        cfg.flowgen.window = window;
        cfg.seed = 3;
        cfg.net.mode = sim::RoutingMode::kShortestUnion;
        cfg.net.intra_jobs = intra_jobs;
        // Large-m cells used to build their tables serially unless the cell
        // itself was sharded; fan the per-destination build over the full
        // --jobs budget instead (identical tables, just faster setup).
        cfg.net.table_jobs = jobs;
        cfg.checkpoint = sweep.spec_for(idx, ctx);
        core::FctResult r;
        if (!is_rrg) {
          r = core::run_fct_experiment(
              dring.graph, workload::RackTm::uniform(dring.graph), cfg);
        } else {
          const topo::Graph rrg =
              topo::make_rrg(dring.graph.num_switches(), net_degree,
                             servers_per_tor,
                             /*seed=*/static_cast<std::uint64_t>(m) * 7 + 1);
          r = core::run_fct_experiment(rrg, workload::RackTm::uniform(rrg),
                                       cfg);
        }
        bench::BenchJson::Cell c;
        c.label = (is_rrg ? "RRG m=" : "DRing m=") + std::to_string(m);
        c.events = r.events;
        c.intra_jobs = r.intra_jobs;
        c.table_build_s = r.table_build_s;
        c.has_fct = true;
        c.flows = r.flows;
        c.completed = r.completed;
        c.p50_ms = r.median_ms();
        c.p99_ms = r.p99_ms();
        c.drops = r.queue_drops;
        c.retransmits = r.retransmits;
        return c;
      });

  bench::BenchJson json("fig6_scale", flags);
  if (sweep.journal().loaded() > 0) json.mark_resumed();
  Table t({"racks", "hosts", "DRing p99 (ms)", "RRG p99 (ms)",
           "FCT(DRing)/FCT(RRG)", "tables (s)"});
  for (std::size_t i = 0; i < n_m; ++i) {
    const int m = m_lo + static_cast<int>(i);
    const topo::DRing dring =
        topo::make_dring(m, tors_per_supernode, servers_per_tor, ports);
    const int racks = dring.graph.num_switches();
    const auto& dr = cells[2 * i];
    const auto& rr = cells[2 * i + 1];
    json.add(dr);
    json.add(rr);
    const bool ok = dr.status == "ok" && rr.status == "ok";
    t.add_row({std::to_string(racks),
               std::to_string(dring.graph.total_servers()),
               dr.status == "ok" ? Table::fmt(dr.p99_ms) : "(" + dr.status + ")",
               rr.status == "ok" ? Table::fmt(rr.p99_ms) : "(" + rr.status + ")",
               ok ? Table::fmt(dr.p99_ms / rr.p99_ms, 2) : "-",
               Table::fmt(dr.table_build_s + rr.table_build_s, 2)});
    std::fprintf(stderr, "  racks=%d done (DRing drops=%ld, RRG drops=%ld)\n",
                 racks, static_cast<long>(dr.drops),
                 static_cast<long>(rr.drops));
  }
  std::printf("%s", t.to_string().c_str());
  if (bench::interrupted()) {
    json.mark_partial();
    json.write();
    std::fprintf(stderr,
                 "interrupted: journal + checkpoints kept; rerun with "
                 "--resume to finish\n");
    return 130;
  }
  json.write();
  sweep.finish(2 * n_m);
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
