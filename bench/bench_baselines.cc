// B1 (DESIGN.md): the §2 comparison the paper argues from — prior expander
// work leans on mechanisms that are "a non-starter for enterprises":
// k-shortest-path source routing with MPTCP (Jellyfish/Xpander), VLB, and
// flowlet switching (Kassing et al.). This bench runs them all on the same
// DRing and workloads next to the deployable schemes (ECMP, SU(2)), so the
// claim "SU(2) gets comparable performance from stock BGP/ECMP/VRF
// features" is measurable.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "routing/ksp.h"
#include "routing/vlb.h"
#include "sim/striping.h"
#include "util/table.h"
#include "workload/flows.h"

namespace spineless {
namespace {

using topo::Graph;
using topo::NodeId;

struct RunResult {
  double p50 = 0;
  double p99 = 0;
  std::size_t flows = 0;
  std::size_t completed = 0;
};

// Per-ToR-pair path cache for the source-routed schemes.
class PathCache {
 public:
  PathCache(const Graph& g, bool vlb, std::size_t k, std::uint64_t seed)
      : g_(g), vlb_(vlb), k_(k), seed_(seed) {}

  const routing::PathSet& get(NodeId a, NodeId b) {
    auto it = cache_.find({a, b});
    if (it != cache_.end()) return it->second;
    routing::PathSet paths =
        vlb_ ? routing::vlb_paths(g_, a, b, k_, seed_ ^ splitmix64(
                                                          static_cast<std::uint64_t>(a) << 20 | static_cast<std::uint64_t>(b)))
             : routing::yen_ksp(g_, a, b, k_);
    return cache_.emplace(std::make_pair(a, b), std::move(paths))
        .first->second;
  }

 private:
  const Graph& g_;
  bool vlb_;
  std::size_t k_;
  std::uint64_t seed_;
  std::map<std::pair<NodeId, NodeId>, routing::PathSet> cache_;
};

std::vector<workload::FlowSpec> make_flows(const Graph& g,
                                           const workload::RackTm& tm,
                                           double offered_bps, Time window,
                                           std::uint64_t seed) {
  Rng rng(seed);
  workload::TmSampler sampler(g, tm);
  workload::FlowGenConfig fg;
  fg.offered_load_bps = offered_bps;
  fg.window = window;
  return workload::generate_flows(sampler, fg, rng);
}

// Hashed modes (ECMP / SU2, optionally with flowlets).
RunResult run_hashed(const Graph& g,
                     const std::vector<workload::FlowSpec>& flows,
                     sim::RoutingMode mode, Time flowlet_gap, Time window) {
  sim::NetworkConfig cfg;
  cfg.mode = mode;
  cfg.flowlet_gap = flowlet_gap;
  sim::Simulator simulator;
  sim::Network net(g, cfg);
  sim::FlowDriver driver(net, sim::TcpConfig{});
  for (const auto& f : flows)
    driver.add_flow(simulator, f.src, f.dst, f.bytes, f.start);
  simulator.run_until(window * 20);
  const auto s = driver.fct_ms();
  return {s.median(), s.p99(), driver.num_flows(), driver.completed_flows()};
}

// MPTCP-over-KSP: stripe each flow over up to `subflows` k-shortest paths.
RunResult run_mptcp(const Graph& g,
                    const std::vector<workload::FlowSpec>& flows,
                    int subflows, Time window) {
  sim::NetworkConfig cfg;
  cfg.mode = sim::RoutingMode::kSourceRouted;
  sim::Simulator simulator;
  sim::Network net(g, cfg);
  sim::StripedFlowDriver driver(net, sim::TcpConfig{});
  PathCache cache(g, /*vlb=*/false, static_cast<std::size_t>(subflows), 0);
  for (const auto& f : flows) {
    const NodeId a = g.tor_of_host(f.src);
    const NodeId b = g.tor_of_host(f.dst);
    driver.add_flow(simulator, f.src, f.dst, f.bytes, f.start, cache.get(a, b),
                    subflows);
  }
  simulator.run_until(window * 20);
  const auto s = driver.fct_ms();
  return {s.median(), s.p99(), driver.num_flows(), driver.completed_flows()};
}

// VLB: every flow pinned to one random Valiant path.
RunResult run_vlb(const Graph& g,
                  const std::vector<workload::FlowSpec>& flows,
                  Time window, std::uint64_t seed) {
  sim::NetworkConfig cfg;
  cfg.mode = sim::RoutingMode::kSourceRouted;
  sim::Simulator simulator;
  sim::Network net(g, cfg);
  sim::FlowDriver driver(net, sim::TcpConfig{});
  PathCache cache(g, /*vlb=*/true, /*k=*/16, seed);
  Rng rng(seed);
  for (const auto& f : flows) {
    const NodeId a = g.tor_of_host(f.src);
    const NodeId b = g.tor_of_host(f.dst);
    const auto& paths = cache.get(a, b);
    const auto id = driver.add_flow(simulator, f.src, f.dst, f.bytes, f.start);
    net.set_flow_routes(id, paths[rng.uniform(paths.size())]);
  }
  simulator.run_until(window * 20);
  const auto s = driver.fct_ms();
  return {s.median(), s.p99(), driver.num_flows(), driver.completed_flows()};
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header(
      "Baselines: deployable vs non-standard routing on the DRing", s,
      flags);

  const topo::DRing dring = s.dring();
  const Graph& g = dring.graph;
  const Time window = 2 * units::kMillisecond;
  const double base_load =
      workload::spine_offered_load_bps(s.x, s.y, 10e9, 0.3);
  const Time gap = 100 * units::kMicrosecond;

  struct TmCase {
    std::string name;
    workload::RackTm tm;
  };
  std::vector<TmCase> tms;
  tms.push_back(
      {"adjacent R2R",
       workload::RackTm::rack_to_rack(g, 0, g.neighbors(0)[0].neighbor)});
  tms.push_back({"FB skewed", workload::RackTm::fb_like_skewed(g, s.seed)});

  // Each TM's flow list is generated once and shared by all five schemes
  // (the paired-comparison design); the (TM, scheme) grid then fans out
  // over the runner. Every scheme builds its own Network, so cells share
  // only immutable state.
  std::vector<std::vector<workload::FlowSpec>> flows_by_tm;
  for (const auto& c : tms) {
    const double load =
        base_load * workload::participating_fraction(g, c.tm);
    flows_by_tm.push_back(make_flows(g, c.tm, load, window, s.seed + 42));
  }

  struct Scheme {
    const char* name;
    const char* hw;
  };
  const std::vector<Scheme> schemes = {
      {"ECMP", "stock"},
      {"Shortest-Union(2)", "stock (BGP+ECMP+VRF)"},
      {"SU(2) + flowlets", "flowlet detection"},
      {"KSP-8 + MPTCP", "MPTCP hosts + source routing"},
      {"VLB", "source routing"},
  };

  core::Runner runner(bench::jobs_from(flags));
  const auto results = bench::sweep(
      runner, tms.size() * schemes.size(), [&](std::size_t idx) {
        const std::size_t ti = idx / schemes.size();
        const auto& flows = flows_by_tm[ti];
        switch (idx % schemes.size()) {
          case 0:
            return run_hashed(g, flows, sim::RoutingMode::kEcmp, 0, window);
          case 1:
            return run_hashed(g, flows, sim::RoutingMode::kShortestUnion, 0,
                              window);
          case 2:
            return run_hashed(g, flows, sim::RoutingMode::kShortestUnion,
                              gap, window);
          case 3:
            return run_mptcp(g, flows, 8, window);
          default:
            return run_vlb(g, flows, window, s.seed + 7);
        }
      });

  bench::BenchJson json("baselines", flags);
  for (std::size_t ti = 0; ti < tms.size(); ++ti) {
    const auto& c = tms[ti];
    Table t({"scheme", "hardware needed", "p50 (ms)", "p99 (ms)", "done"});
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      const auto& cell = results[ti * schemes.size() + si];
      const RunResult& r = cell.value;
      t.add_row({schemes[si].name, schemes[si].hw, Table::fmt(r.p50),
                 Table::fmt(r.p99),
                 std::to_string(r.completed) + "/" +
                     std::to_string(r.flows)});
      std::fprintf(stderr, "  [%s | %s] done\n", c.name.c_str(),
                   schemes[si].name);
      bench::BenchJson::Cell jc;
      jc.label = c.name + " | " + schemes[si].name;
      jc.wall_s = cell.wall_s;
      jc.has_fct = true;
      jc.flows = r.flows;
      jc.completed = r.completed;
      jc.p50_ms = r.p50;
      jc.p99_ms = r.p99;
      json.add(std::move(jc));
    }
    std::printf("%s\n%s\n", c.name.c_str(), t.to_string().c_str());
  }
  json.write();
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
