// Extension A4 (DESIGN.md; the paper's §1/§7 "wiring and management
// complexity" and §3.2 "incrementally expandable"): the operational side of
// the topology choice.
//
//  Part 1 — cabling: cable-length distribution and bundle counts for
//  leaf-spine, RRG, and DRing on the same machine-room floor. DRing's
//  neighbors-only structure keeps cables short and bundled; the RRG sprays
//  them across the room (the §1 adoption roadblock).
//
//  Part 2 — expansion: cost of growing each fabric by one rack's worth of
//  capacity. The DRing rewires O(n^2) cables at the insertion point; the
//  fully-populated leaf-spine has no free spine ports, so growth means
//  replacing the spine layer (every leaf uplink re-terminated).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "topo/cost.h"
#include "topo/expand.h"
#include "topo/wiring.h"
#include "util/table.h"

namespace spineless {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header("Operational advantages: cabling and expansion", s,
                      flags);

  const topo::Graph ls = s.leaf_spine();
  const topo::Graph rrg = s.rrg();
  const topo::DRing dring = s.dring();

  topo::LayoutConfig layout;
  layout.racks_per_row =
      static_cast<int>(flags.get_int("racks_per_row", 16));

  // One cell per topology: wiring census + priced BOM under one layout.
  const std::vector<const topo::Graph*> graphs = {&ls, &rrg, &dring.graph};
  struct OpsCell {
    topo::WiringReport wiring;
    topo::CostReport cost;
  };
  topo::CostModel model;
  core::Runner runner(bench::jobs_from(flags));
  const auto results =
      bench::sweep(runner, graphs.size(), [&](std::size_t i) {
        const topo::Graph& g = *graphs[i];
        const auto placement = topo::row_major_layout(g, layout);
        return OpsCell{topo::wiring_report(g, placement, layout),
                       topo::cost_report(g, placement, layout, model)};
      });

  bench::BenchJson json("operational", flags);
  Table cabling({"topology", "cables", "bundles", "total (m)", "mean (m)",
                 "p99 (m)", "max (m)", "<=5m fraction"});
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto& rep = results[i].value.wiring;
    cabling.add_row({graphs[i]->name(), std::to_string(rep.cables),
                     std::to_string(rep.bundles), Table::fmt(rep.total_m, 0),
                     Table::fmt(rep.mean_m, 1),
                     Table::fmt(rep.lengths.p99(), 1),
                     Table::fmt(rep.max_m, 1),
                     Table::fmt(rep.local_fraction, 2)});
    bench::BenchJson::Cell jc;
    jc.label = graphs[i]->name();
    jc.wall_s = results[i].wall_s;
    json.add(std::move(jc));
  }
  std::printf("Cabling census (row-major floor, %d racks/row):\n%s\n",
              layout.racks_per_row, cabling.to_string().c_str());

  // Priced BOM under the same layout (same switches by construction; the
  // difference is cable classes).
  Table costs({"topology", "DAC", "AOC", "optics", "switch $", "cable $",
               "total $", "$ / server", "power (kW)"});
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto& rep = results[i].value.cost;
    costs.add_row({graphs[i]->name(), std::to_string(rep.dac),
                   std::to_string(rep.aoc), std::to_string(rep.optics),
                   Table::fmt(rep.switch_usd, 0), Table::fmt(rep.cable_usd, 0),
                   Table::fmt(rep.total_usd, 0),
                   Table::fmt(rep.usd_per_server, 0),
                   Table::fmt(rep.power_w / 1000.0, 2)});
  }
  std::printf("Equipment cost (defaults in topo/cost.h):\n%s\n",
              costs.to_string().c_str());

  // Expansion: add one supernode's worth of racks at every ring position.
  const int n = s.num_switches() / s.dring_supernodes;
  Table expansion({"insertion position", "cables kept", "cables added",
                   "cables removed", "untouched fraction"});
  for (int pos : {0, s.dring_supernodes / 2, s.dring_supernodes - 1}) {
    const auto exp = topo::expand_dring(dring, n, /*servers_per_tor=*/0, pos);
    expansion.add_row(
        {std::to_string(pos), std::to_string(exp.stats.links_kept),
         std::to_string(exp.stats.links_added),
         std::to_string(exp.stats.links_removed),
         Table::fmt(static_cast<double>(exp.stats.links_kept) /
                        dring.graph.num_links(),
                    3)});
  }
  std::printf("DRing expansion by one supernode (%d ToRs):\n%s\n", n,
              expansion.to_string().c_str());

  // Jellyfish-style growth of the RRG by the same number of switches.
  {
    topo::Graph grown = rrg;
    int added = 0, removed = 0;
    for (int i = 0; i < n; ++i) {
      const int degree = grown.network_degree(0) & ~1;  // even
      const auto exp = topo::expand_random(
          grown, degree, /*servers=*/0, s.seed + static_cast<std::uint64_t>(i));
      added += exp.stats.links_added;
      removed += exp.stats.links_removed;
      grown = exp.graph;
    }
    std::printf(
        "RRG (Jellyfish) growth by %d switches: %d cables added, %d "
        "re-terminated (%0.f%% of the original fabric untouched).\n\n",
        n, added, removed,
        100.0 * (1.0 - static_cast<double>(removed) / rrg.num_links()));
  }
  std::printf(
      "Leaf-spine comparison: all %d spine ports are occupied, so adding a "
      "%dth rack\nrequires replacing every spine switch and re-terminating "
      "all %d leaf uplinks.\n",
      s.y * (s.x + s.y), s.x + s.y + 1, s.y * (s.x + s.y));
  json.write();
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
