// §4 prototype reproduction (E5/E6 in DESIGN.md): the BGP + VRF realization
// of Shortest-Union(K), standing in for the paper's GNS3 / Cisco-7200
// deployment (DESIGN.md §2). For each topology:
//   * converge the eBGP mesh and report rounds + installed routes,
//   * verify Theorem 1 (VRF distance = max(L, K)) over all pairs,
//   * verify the converged FIBs realize exactly Shortest-Union(K),
//   * check §4's claim of >= n+1 disjoint paths between DRing racks, and
//     report the path-diversity census ECMP vs SU(2).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ctrl/bgp.h"
#include "routing/disjoint.h"
#include "routing/ecmp.h"
#include "routing/paths.h"
#include "routing/vrf.h"
#include "util/table.h"

namespace spineless {
namespace {

struct Verification {
  int rounds = 0;
  std::size_t routes = 0;
  bool theorem1 = true;
  bool fib_equals_su = true;
  int min_disjoint = 1 << 30;
  double mean_ecmp_paths = 0;
  double mean_su_paths = 0;
};

Verification verify(const topo::Graph& g, int k, bool check_fib) {
  Verification v;
  ctrl::BgpVrfNetwork bgp(g, k);
  v.rounds = bgp.converge();
  v.routes = bgp.installed_routes();
  const auto table = routing::VrfTable::compute(g, k);

  double ecmp_sum = 0, su_sum = 0;
  std::int64_t pairs = 0;
  for (topo::NodeId a = 0; a < g.num_switches(); ++a) {
    for (topo::NodeId b = 0; b < g.num_switches(); ++b) {
      if (a == b) continue;
      v.theorem1 &= table.theorem1_holds(g, a, b);
      const auto su = routing::shortest_union_paths(g, a, b, k, 4096);
      if (check_fib) v.fib_equals_su &= bgp.fib_paths(a, b, 4096) == su;
      // Exact for K = 2 (the configuration under test); for other K the
      // greedy lower bound is reported.
      v.min_disjoint = std::min(
          v.min_disjoint, k == 2 ? routing::max_disjoint_su2_paths(g, a, b)
                                 : routing::greedy_disjoint_count(su));
      ecmp_sum += static_cast<double>(
          routing::enumerate_shortest_paths(g, a, b, 4096).size());
      su_sum += static_cast<double>(su.size());
      ++pairs;
    }
  }
  v.mean_ecmp_paths = ecmp_sum / static_cast<double>(pairs);
  v.mean_su_paths = su_sum / static_cast<double>(pairs);
  return v;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header(
      "Section 4: Shortest-Union(K) via BGP + VRFs (prototype)", s, flags);

  const int k = static_cast<int>(flags.get_int("k", 2));
  // Full-FIB equivalence on every pair is O(pairs x paths); restrict it to
  // the medium scale unless forced.
  const bool check_fib =
      !flags.paper_scale() || flags.get_bool("check_fib", false);

  struct Case {
    std::string name;
    topo::Graph graph;
    int n_claim;  // the n of the >= n+1 DRing claim; 0 = no claim
  };
  const topo::DRing dring = s.dring();
  const int dring_n =
      s.num_switches() / s.dring_supernodes;  // smallest supernode size
  std::vector<Case> cases;
  cases.push_back({"DRing", dring.graph, dring_n});
  cases.push_back({"RRG (flat)", s.rrg(), 0});
  cases.push_back({"leaf-spine", s.leaf_spine(), 0});

  // One verification cell per topology; each builds its own BGP mesh.
  core::Runner runner(bench::jobs_from(flags));
  const auto results = bench::sweep(runner, cases.size(), [&](std::size_t i) {
    return verify(cases[i].graph, k, check_fib);
  });

  bench::BenchJson json("vrf_bgp", flags);
  Table t({"topology", "BGP rounds", "routes", "Theorem 1",
           "FIB == SU(K)", "min disjoint", "claim >= n+1",
           "mean #paths ECMP", "mean #paths SU(K)"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    const Verification& v = results[i].value;
    t.add_row({c.name, std::to_string(v.rounds), std::to_string(v.routes),
               v.theorem1 ? "PASS" : "FAIL",
               check_fib ? (v.fib_equals_su ? "PASS" : "FAIL") : "(skipped)",
               std::to_string(v.min_disjoint),
               c.n_claim > 0
                   ? (v.min_disjoint >= c.n_claim + 1 ? "PASS" : "FAIL")
                   : "-",
               Table::fmt(v.mean_ecmp_paths, 1),
               Table::fmt(v.mean_su_paths, 1)});
    bench::BenchJson::Cell jc;
    jc.label = c.name;
    jc.wall_s = results[i].wall_s;
    json.add(std::move(jc));
  }
  json.write();
  std::printf("K = %d\n%s", k, t.to_string().c_str());
  if (s.dring_supernodes >= 9) {
    std::printf(
        "\nNote: for DRings with m >= 9 supernodes, racks four supernodes\n"
        "apart share exactly one common supernode, so the minimum disjoint\n"
        "SU(2) path count is exactly n (= %d), not the paper's n+1 — the\n"
        "claim as stated holds for m <= 8 (see EXPERIMENTS.md).\n",
        dring_n);
  }
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
