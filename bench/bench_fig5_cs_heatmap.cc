// Figure 5 reproduction (E2 in DESIGN.md): C-S model throughput heatmaps.
// Each cell is throughput(DRing) / throughput(leaf-spine) for C clients
// sending long-running flows to S servers (max-min fair fluid model, one
// flow per client-server pair, downsampled when huge). Four panels:
//   (a) small C,S with DRing-ECMP      (b) small C,S with DRing-SU(2)
//   (c) large C,S with DRing-ECMP      (d) large C,S with DRing-SU(2)
// The leaf-spine baseline always runs standard ECMP.
//
// Expected shape (paper Fig. 5): ratios ~1 on the uniform diagonal,
// approaching the 2x UDF prediction for skewed cells (|C| << |S| or
// vice-versa); ECMP weak in the lower-left (small C and S), SU(2) fixes it.
//
// At the default medium scale the C,S axes are scaled by the server-count
// ratio (768/3072 = 1/4) so the panels cover the same relative range as
// the paper's 20..260 and 200..1400.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/throughput_experiment.h"
#include "util/table.h"

namespace spineless {
namespace {

using core::Scenario;
using core::ThroughputConfig;

std::vector<int> axis(int lo, int hi, int steps) {
  std::vector<int> v;
  for (int i = 0; i < steps; ++i)
    v.push_back(lo + (hi - lo) * i / (steps - 1));
  return v;
}

struct PanelSpec {
  const char* title;
  const std::vector<int>* cs;  // shared C and S axis
  sim::RoutingMode dring_mode;
};

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const Scenario s = bench::scenario_from(flags);
  bench::print_header(
      "Figure 5: C-S model throughput, DRing / leaf-spine", s, flags);

  const topo::Graph ls = s.leaf_spine();
  const topo::DRing dring = s.dring();
  std::printf("DRing: %d racks, %d servers; leaf-spine: %d racks, %d "
              "servers\n\n",
              dring.graph.num_switches(), dring.graph.total_servers(),
              topo::leaf_spine_num_leaves(s.x, s.y), ls.total_servers());

  // Scale the paper's axes by the server-count ratio; cap the large axis
  // so C + S always fits in the smaller topology (the DRing trades server
  // ports for ring links).
  const double scale =
      static_cast<double>(ls.total_servers()) / 3072.0;
  const int min_servers =
      std::min(ls.total_servers(), dring.graph.total_servers());
  const int steps = static_cast<int>(flags.get_int("steps", 5));
  const auto small_axis =
      axis(std::max(2, static_cast<int>(20 * scale)),
           static_cast<int>(260 * scale), steps);
  const auto large_axis =
      axis(std::max(4, static_cast<int>(200 * scale)),
           std::min(static_cast<int>(1400 * scale),
                    static_cast<int>(0.45 * min_servers)),
           steps);
  const std::uint64_t seed = s.seed + 5;

  const std::vector<PanelSpec> panels = {
      {"(a) small C,S — DRing ECMP vs leaf-spine ECMP", &small_axis,
       sim::RoutingMode::kEcmp},
      {"(b) small C,S — DRing Shortest-Union(2) vs leaf-spine ECMP",
       &small_axis, sim::RoutingMode::kShortestUnion},
      {"(c) large C,S — DRing ECMP vs leaf-spine ECMP", &large_axis,
       sim::RoutingMode::kEcmp},
      {"(d) large C,S — DRing Shortest-Union(2) vs leaf-spine ECMP",
       &large_axis, sim::RoutingMode::kShortestUnion},
  };

  // All four panels' (C, S) cells are independent — one flat sweep.
  const auto nsteps = static_cast<std::size_t>(steps);
  const std::size_t per_panel = nsteps * nsteps;
  core::Runner runner(bench::jobs_from(flags));
  const auto results = bench::sweep(
      runner, panels.size() * per_panel, [&](std::size_t idx) {
        const PanelSpec& p = panels[idx / per_panel];
        const int c = (*p.cs)[(idx / nsteps) % nsteps];
        const int srv = (*p.cs)[idx % nsteps];
        ThroughputConfig ls_cfg;
        ls_cfg.mode = sim::RoutingMode::kEcmp;
        ls_cfg.seed = seed;
        ThroughputConfig dr_cfg = ls_cfg;
        dr_cfg.mode = p.dring_mode;
        const auto base = core::run_cs_throughput(ls, c, srv, ls_cfg);
        const auto flat =
            core::run_cs_throughput(dring.graph, c, srv, dr_cfg);
        return flat.mean_bps / base.mean_bps;
      });

  bench::BenchJson json("fig5_cs_heatmap", flags);
  for (std::size_t pi = 0; pi < panels.size(); ++pi) {
    const PanelSpec& p = panels[pi];
    std::vector<std::vector<double>> cells;
    std::vector<std::string> row_labels, col_labels;
    for (int srv : *p.cs) col_labels.push_back(std::to_string(srv));
    for (std::size_t i = 0; i < nsteps; ++i) {
      row_labels.push_back(std::to_string((*p.cs)[i]));
      std::vector<double> row;
      for (std::size_t j = 0; j < nsteps; ++j) {
        const auto& cell = results[pi * per_panel + i * nsteps + j];
        row.push_back(cell.value);
        bench::BenchJson::Cell jc;
        jc.label = std::string("panel") + static_cast<char>('a' + pi) +
                   " C=" + row_labels.back() + " S=" + col_labels[j];
        jc.wall_s = cell.wall_s;
        json.add(std::move(jc));
      }
      cells.push_back(std::move(row));
    }
    std::printf("%s\n%s\n", p.title,
                render_heatmap(cells, row_labels, col_labels, "C\\S")
                    .c_str());
  }
  json.write();

  if (flags.get_bool("validate", false)) {
    // Re-measure a few cells the way the paper did — long-running TCP
    // flows in the packet simulator — and compare the DRing/leaf-spine
    // ratio against the fluid heatmap value.
    std::printf("Validation: fluid vs packet-measured ratios "
                "(Shortest-Union(2), 5 ms of simulated time):\n");
    Table v({"C", "S", "fluid ratio", "packet ratio"});
    const Time duration = 5 * units::kMillisecond;
    for (const auto& [c, srv] :
         std::vector<std::pair<int, int>>{{small_axis[1], small_axis[3]},
                                          {small_axis[3], small_axis[1]},
                                          {small_axis[2], small_axis[2]}}) {
      ThroughputConfig cfg;
      cfg.seed = seed;
      cfg.max_pairs = 2'000;  // keep the packet run tractable
      cfg.mode = sim::RoutingMode::kEcmp;
      const auto ls_fluid = core::run_cs_throughput(ls, c, srv, cfg);
      const auto ls_packet =
          core::run_cs_throughput_packet(ls, c, srv, cfg, duration);
      cfg.mode = sim::RoutingMode::kShortestUnion;
      const auto dr_fluid =
          core::run_cs_throughput(dring.graph, c, srv, cfg);
      const auto dr_packet =
          core::run_cs_throughput_packet(dring.graph, c, srv, cfg, duration);
      v.add_row({std::to_string(c), std::to_string(srv),
                 Table::fmt(dr_fluid.mean_bps / ls_fluid.mean_bps, 2),
                 Table::fmt(dr_packet.mean_bps / ls_packet.mean_bps, 2)});
      std::fprintf(stderr, "  validate C=%d S=%d done\n", c, srv);
    }
    std::printf("%s", v.to_string().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
