// Hybrid packet/fluid co-simulation bench (ISSUE 7 tentpole): writes
// BENCH_hybrid.json with two cell families.
//
//  * Calibration cells — the BENCH_fidelity small cell (6x2 DRing, uniform
//    TM) at three utilizations, each run both hybrid (hot region = two
//    adjacent supernodes) and pure packet. The JSON records the hybrid and
//    packet p50/p99 plus their ratios; the documented envelope (tested by
//    Hybrid.CalibrationWithinDocumentedTolerance) is a 2x ratio band.
//
//  * Scale cells — a 10k-switch DRing (m=2500, n=4) with a skewed rng-tier
//    workload, far past what the pure packet engine finishes in comparable
//    wall-clock, run TWICE: --intra_jobs=1 and --intra_jobs=2. Identical
//    result_hash values in the JSON are the committed evidence that hybrid
//    runs are byte-identical across intra_jobs; the process exits nonzero
//    if they diverge. Cells run through ResumableSweep, so a kill -9
//    mid-cell resumes from the periodic checkpoint with --resume
//    (kill_resume_smoke-style) and must land on the same hash.
//
// --faults switches to the whole-network fault-tolerance sweep (ISSUE 8):
// failed-link fraction x {DRing, RRG} at 10k switches plus a 100k-switch
// DRing cell, each failing a seed-sampled set of links permanently across
// the whole graph — packet region, cut, and fluid external links alike.
// The JSON (default BENCH_hybrid_faults.json; the committed copy lives in
// results/) records per cell the fluid blackhole seconds, stalled flows,
// boundary re-pins, and goodput recovery; the process exits nonzero unless
// every cell accounts for all flows (completed + stalled == flows), sees a
// nonzero fluid blackhole, and the intra_jobs determinism repeat lands on
// the identical result_hash.
//
// Flags: --jobs, --intra_jobs (scale-cell override), --resume, --audit,
// --checkpoint_ms, --json_out, plus --m=2500 to shrink/grow the scale cell
// (--faults adds --m_big=25000 for the 100k-switch cell).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "core/hybrid_experiment.h"
#include "topo/builders.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/flows.h"
#include "workload/tm.h"

namespace spineless {
namespace {

// The small-cell hybrid configuration the calibration tests pin: hot region
// = supernodes {0,1} (a single DRing supernode has no internal links), fine
// 50us windows so window-granularity loss recovery stays out of the tail.
core::HybridConfig calib_cfg(double utilization) {
  core::HybridConfig cfg;
  cfg.fct.seed = 7;
  cfg.fct.flowgen.offered_load_bps =
      workload::spine_offered_load_bps(6, 2, 10e9, utilization);
  cfg.fct.flowgen.window = units::kMillisecond;
  cfg.fct.drain_factor = 8.0;
  cfg.region_mode = core::RegionMode::kSupernodes;
  cfg.region_supernodes = {0, 1};
  cfg.window = 50 * units::kMicrosecond;
  return cfg;
}

// `count` distinct full-graph links to fault, sampled uniformly from the
// seed and staggered 10us apart from t=1ms so the control plane digests a
// rolling outage, not one synchronized cliff. flap_us == 0 fails each link
// permanently; > 0 restores it that many microseconds after it fell (the
// check.sh recovery smoke uses flaps so post-repair goodput is defined).
std::string sampled_fail_spec(const topo::Graph& g, std::uint64_t seed,
                              int count, long long flap_us) {
  Rng rng(splitmix64(seed ^ 0xFA175EEDULL));
  std::vector<char> picked(static_cast<std::size_t>(g.num_links()), 0);
  std::string spec;
  for (int chosen = 0; chosen < count;) {
    const auto l = static_cast<std::size_t>(
        rng.uniform(static_cast<std::uint64_t>(g.num_links())));
    if (picked[l]) continue;
    picked[l] = 1;
    if (!spec.empty()) spec += "; ";
    const long long at_us = 1000 + 10 * chosen;
    if (flap_us > 0) {
      spec += "flap link=" + std::to_string(l) +
              " down=" + std::to_string(at_us) +
              "us up=" + std::to_string(at_us + flap_us) + "us";
    } else {
      spec += "fail link=" + std::to_string(l) +
              " at=" + std::to_string(at_us) + "us";
    }
    ++chosen;
  }
  return spec;
}

int run_faults(const Flags& flags) {
  const int tors_per_supernode = static_cast<int>(flags.get_int("n", 4));
  const int servers_per_tor = static_cast<int>(flags.get_int("servers", 2));
  const int net_degree = 4 * tors_per_supernode;
  const int ports = net_degree + servers_per_tor;
  const int m = static_cast<int>(flags.get_int("m", 2500));
  const int m_big = static_cast<int>(flags.get_int("m_big", 25000));
  const Time window = flags.get_int("window_ms", 2) * units::kMillisecond;
  const auto hot_flows = static_cast<int>(flags.get_int("hot_flows", 512));
  const auto bg_flows = static_cast<int>(flags.get_int("bg_flows", 256));
  const std::int64_t bytes = flags.get_int("flow_bytes", 250'000);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const long long flap_us = flags.get_int("flap_ms", 0) * 1000;
  const int intra_repeat = bench::intra_jobs_from(flags) > 1
                               ? bench::intra_jobs_from(flags)
                               : 2;

  // Failed-link fraction x {DRing, RRG} at m, the intra_jobs determinism
  // repeat of cell 0, and the 100k-switch DRing headline cell.
  struct FaultCellSpec {
    bool rrg;
    double fraction;
    int intra;
    int m;
  };
  const std::vector<FaultCellSpec> plan = {
      {false, 0.001, 1, m},         {false, 0.01, 1, m},
      {true, 0.001, 1, m},          {true, 0.01, 1, m},
      {false, 0.001, intra_repeat, m}, {false, 0.001, 1, m_big},
  };

  std::printf("== bench_hybrid --faults: whole-network fault tolerance ==\n");
  std::printf(
      "dring/rrg(n=%d) at %d and %d switches | fail fraction {0.001,0.01} | "
      "%d hot + %d bg flows\n\n",
      tors_per_supernode, m * tors_per_supernode, m_big * tors_per_supernode,
      hot_flows, bg_flows);

  core::Runner runner(bench::outer_jobs(flags));
  const std::string config_sig =
      "hybrid_faults m=" + std::to_string(m) +
      " m_big=" + std::to_string(m_big) + " n=" +
      std::to_string(tors_per_supernode) + " hot=" +
      std::to_string(hot_flows) + " bg=" + std::to_string(bg_flows) +
      " bytes=" + std::to_string(bytes) +
      " window=" + std::to_string(static_cast<long long>(window)) +
      " seed=" + std::to_string(seed) + " flap=" + std::to_string(flap_us) +
      " intra=" + std::to_string(intra_repeat);
  bench::ResumableSweep sweep("hybrid_faults", flags, config_sig);
  const auto cells = bench::run_resumable(
      runner, plan.size(), sweep, [&](std::size_t idx, util::CellContext& ctx) {
        const FaultCellSpec& fc = plan[idx];
        core::HybridConfig cfg;
        cfg.fct.seed = seed;
        cfg.fct.flowgen.window = window;
        // Generous drain: stalled flows never finish, so the deadline only
        // needs to cover completion of the survivors after reconvergence.
        cfg.fct.drain_factor = 20.0;
        cfg.fct.net.mode = sim::RoutingMode::kShortestUnion;
        cfg.fct.net.intra_jobs = fc.intra;
        cfg.fct.net.table_jobs = bench::jobs_from(flags);
        cfg.fct.checkpoint = sweep.spec_for(idx, ctx);
        cfg.region_mode = core::RegionMode::kAuto;
        cfg.auto_region_switches = 2 * tors_per_supernode;
        const topo::Graph graph =
            fc.rrg ? topo::make_rrg(
                         fc.m * tors_per_supernode, net_degree,
                         servers_per_tor,
                         /*seed=*/static_cast<std::uint64_t>(fc.m) * 7 + 1)
                   : topo::make_dring(fc.m, tors_per_supernode,
                                      servers_per_tor, ports)
                         .graph;
        const int failed = std::max(
            1, static_cast<int>(fc.fraction *
                                static_cast<double>(graph.num_links())));
        cfg.fault_spec = sampled_fail_spec(graph, seed, failed, flap_us);
        const auto specs = bench::rng_tier_flows(
            graph, seed, 2 * tors_per_supernode, hot_flows, bg_flows, bytes,
            window);
        const auto r = core::run_hybrid_experiment_flows(graph, specs, cfg);
        return bench::hybrid_fault_cell(
            std::string(fc.rrg ? "RRG " : "DRing ") +
                std::to_string(fc.m * tors_per_supernode) +
                "sw f=" + Table::fmt(fc.fraction, 3) +
                " intra=" + std::to_string(fc.intra),
            r, failed);
      });

  bench::BenchJson json("hybrid_faults", flags);
  if (sweep.journal().loaded() > 0) json.mark_resumed();
  Table t({"cell", "failed", "outages", "blackhole (s)", "stalled",
           "repins", "recovery", "completed"});
  for (const auto& c : cells) {
    json.add(c);
    t.add_row({c.label,
               c.status == "ok" ? std::to_string(c.failed_links)
                                : "(" + c.status + ")",
               std::to_string(c.fluid_outages),
               Table::fmt(c.fluid_blackhole_s, 4),
               std::to_string(c.stalled_flows),
               std::to_string(c.boundary_repins),
               Table::fmt(c.goodput_recovery, 2),
               std::to_string(c.completed) + "/" + std::to_string(c.flows)});
  }
  std::printf("%s", t.to_string().c_str());
  if (bench::interrupted()) {
    json.mark_partial();
    json.write();
    std::fprintf(stderr,
                 "interrupted: journal + checkpoints kept; rerun with "
                 "--resume to finish\n");
    return 130;
  }
  json.write();
  sweep.finish(plan.size());

  // Gates: every flow accounted for, faults actually bit, and the
  // intra_jobs repeat is byte-identical to its intra=1 twin.
  int rc = 0;
  for (const auto& c : cells) {
    if (c.status != "ok") continue;
    if (c.completed + c.stalled_flows != c.flows) {
      std::fprintf(stderr,
                   "FAIL: %s lost flows (%zu completed + %zu stalled != "
                   "%zu)\n",
                   c.label.c_str(), c.completed, c.stalled_flows, c.flows);
      rc = 1;
    }
    if (c.fluid_blackhole_s <= 0) {
      std::fprintf(stderr, "FAIL: %s saw no fluid blackhole\n",
                   c.label.c_str());
      rc = 1;
    }
  }
  if (cells[0].status == "ok" && cells[4].status == "ok") {
    if (cells[0].result_hash != cells[4].result_hash) {
      std::fprintf(stderr,
                   "FAIL: fault cell hashes diverge across intra_jobs "
                   "(%llu vs %llu)\n",
                   static_cast<unsigned long long>(cells[0].result_hash),
                   static_cast<unsigned long long>(cells[4].result_hash));
      rc = 1;
    } else {
      std::printf(
          "fault cells byte-identical across intra_jobs (hash %llu)\n",
          static_cast<unsigned long long>(cells[0].result_hash));
    }
  }
  return rc;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  if (flags.get_bool("faults", false)) return run_faults(flags);
  const std::vector<double> utils = {0.2, 0.3, 0.4};
  const int m = static_cast<int>(flags.get_int("m", 2500));
  const int tors_per_supernode = 4;
  const int servers_per_tor = 2;
  const int ports = 4 * tors_per_supernode + servers_per_tor;
  const Time window = flags.get_int("window_ms", 2) * units::kMillisecond;
  const auto hot_flows = static_cast<int>(flags.get_int("hot_flows", 512));
  const auto bg_flows = static_cast<int>(flags.get_int("bg_flows", 256));
  const std::int64_t bytes = flags.get_int("flow_bytes", 250'000);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const std::vector<int> scale_intra = {1, bench::intra_jobs_from(flags) > 1
                                               ? bench::intra_jobs_from(flags)
                                               : 2};

  std::printf("== bench_hybrid: packet/fluid co-simulation ==\n");
  std::printf(
      "calibration: dring(6,2,2) x utilization {0.2,0.3,0.4} | scale: "
      "dring(m=%d,n=%d) = %d switches, %d hot + %d bg flows\n\n",
      m, tors_per_supernode, m * tors_per_supernode, hot_flows, bg_flows);

  const std::size_t n_cells = utils.size() + scale_intra.size();
  core::Runner runner(bench::outer_jobs(flags));
  const std::string config_sig =
      "hybrid m=" + std::to_string(m) + " hot=" + std::to_string(hot_flows) +
      " bg=" + std::to_string(bg_flows) + " bytes=" + std::to_string(bytes) +
      " window=" + std::to_string(static_cast<long long>(window)) +
      " seed=" + std::to_string(seed) +
      " intra=" + std::to_string(scale_intra[1]);
  bench::ResumableSweep sweep("hybrid", flags, config_sig);
  const auto cells = bench::run_resumable(
      runner, n_cells, sweep, [&](std::size_t idx, util::CellContext& ctx) {
        if (idx < utils.size()) {
          // Calibration: hybrid vs pure packet on the same cell.
          auto cfg = calib_cfg(utils[idx]);
          cfg.fct.checkpoint = sweep.spec_for(idx, ctx);
          const auto d = topo::make_dring(6, 2, 2);
          const auto tm = workload::RackTm::uniform(d.graph);
          const auto hybrid =
              core::run_hybrid_experiment(d.graph, tm, cfg, &d.supernode_of);
          core::FctConfig pcfg = cfg.fct;
          pcfg.checkpoint = sim::CheckpointSpec{};
          const auto packet = core::run_fct_experiment(d.graph, tm, pcfg);
          auto c = bench::hybrid_cell(
              "calib util=" + Table::fmt(utils[idx], 1), hybrid);
          c.has_calib = true;
          c.packet_p50_ms = packet.median_ms();
          c.packet_p99_ms = packet.p99_ms();
          c.p50_ratio = packet.median_ms() > 0
                            ? hybrid.median_ms() / packet.median_ms()
                            : 0;
          c.p99_ratio =
              packet.p99_ms() > 0 ? hybrid.p99_ms() / packet.p99_ms() : 0;
          return c;
        }
        // Scale: the 10k-switch DRing, once per intra_jobs value.
        const int intra = scale_intra[idx - utils.size()];
        core::HybridConfig cfg;
        cfg.fct.seed = seed;
        cfg.fct.flowgen.window = window;
        cfg.fct.drain_factor = 10.0;
        cfg.fct.net.mode = sim::RoutingMode::kShortestUnion;
        cfg.fct.net.intra_jobs = intra;
        cfg.fct.net.table_jobs = bench::jobs_from(flags);
        cfg.fct.checkpoint = sweep.spec_for(idx, ctx);
        cfg.region_mode = core::RegionMode::kAuto;
        cfg.auto_region_switches = 2 * tors_per_supernode;
        const topo::DRing dring =
            topo::make_dring(m, tors_per_supernode, servers_per_tor, ports);
        const auto specs = bench::rng_tier_flows(
            dring.graph, seed, 2 * tors_per_supernode, hot_flows, bg_flows,
            bytes, window);
        const auto r = core::run_hybrid_experiment_flows(dring.graph, specs, cfg);
        return bench::hybrid_cell("scale " +
                                      std::to_string(m * tors_per_supernode) +
                                      "sw intra=" + std::to_string(intra),
                                  r);
      });

  bench::BenchJson json("hybrid", flags);
  if (sweep.journal().loaded() > 0) json.mark_resumed();
  Table t({"cell", "p50 (ms)", "p99 (ms)", "p50 ratio", "p99 ratio",
           "completed", "pkt events", "solves/skip"});
  for (const auto& c : cells) {
    json.add(c);
    t.add_row({c.label,
               c.status == "ok" ? Table::fmt(c.p50_ms) : "(" + c.status + ")",
               c.status == "ok" ? Table::fmt(c.p99_ms) : "-",
               c.has_calib ? Table::fmt(c.p50_ratio, 2) : "-",
               c.has_calib ? Table::fmt(c.p99_ratio, 2) : "-",
               std::to_string(c.completed) + "/" + std::to_string(c.flows),
               std::to_string(c.events),
               std::to_string(c.fluid_solves) + "/" +
                   std::to_string(c.fluid_solves_skipped)});
  }
  std::printf("%s", t.to_string().c_str());
  if (bench::interrupted()) {
    json.mark_partial();
    json.write();
    std::fprintf(stderr,
                 "interrupted: journal + checkpoints kept; rerun with "
                 "--resume to finish\n");
    return 130;
  }
  json.write();
  sweep.finish(n_cells);

  // Byte-identity gate: both scale cells must land on the same result_hash.
  const auto& a = cells[utils.size()];
  const auto& b = cells[utils.size() + 1];
  if (a.status == "ok" && b.status == "ok") {
    if (a.result_hash != b.result_hash) {
      std::fprintf(stderr,
                   "FAIL: scale cell hashes diverge across intra_jobs "
                   "(%llu vs %llu)\n",
                   static_cast<unsigned long long>(a.result_hash),
                   static_cast<unsigned long long>(b.result_hash));
      return 1;
    }
    std::printf("scale cells byte-identical across intra_jobs (hash %llu)\n",
                static_cast<unsigned long long>(a.result_hash));
  }
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
