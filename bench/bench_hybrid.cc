// Hybrid packet/fluid co-simulation bench (ISSUE 7 tentpole): writes
// BENCH_hybrid.json with two cell families.
//
//  * Calibration cells — the BENCH_fidelity small cell (6x2 DRing, uniform
//    TM) at three utilizations, each run both hybrid (hot region = two
//    adjacent supernodes) and pure packet. The JSON records the hybrid and
//    packet p50/p99 plus their ratios; the documented envelope (tested by
//    Hybrid.CalibrationWithinDocumentedTolerance) is a 2x ratio band.
//
//  * Scale cells — a 10k-switch DRing (m=2500, n=4) with a skewed rng-tier
//    workload, far past what the pure packet engine finishes in comparable
//    wall-clock, run TWICE: --intra_jobs=1 and --intra_jobs=2. Identical
//    result_hash values in the JSON are the committed evidence that hybrid
//    runs are byte-identical across intra_jobs; the process exits nonzero
//    if they diverge. Cells run through ResumableSweep, so a kill -9
//    mid-cell resumes from the periodic checkpoint with --resume
//    (kill_resume_smoke-style) and must land on the same hash.
//
// Flags: --jobs, --intra_jobs (scale-cell override), --resume, --audit,
// --checkpoint_ms, --json_out, plus --m=2500 to shrink/grow the scale cell.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "core/hybrid_experiment.h"
#include "topo/builders.h"
#include "util/table.h"
#include "workload/flows.h"
#include "workload/tm.h"

namespace spineless {
namespace {

// The small-cell hybrid configuration the calibration tests pin: hot region
// = supernodes {0,1} (a single DRing supernode has no internal links), fine
// 50us windows so window-granularity loss recovery stays out of the tail.
core::HybridConfig calib_cfg(double utilization) {
  core::HybridConfig cfg;
  cfg.fct.seed = 7;
  cfg.fct.flowgen.offered_load_bps =
      workload::spine_offered_load_bps(6, 2, 10e9, utilization);
  cfg.fct.flowgen.window = units::kMillisecond;
  cfg.fct.drain_factor = 8.0;
  cfg.region_mode = core::RegionMode::kSupernodes;
  cfg.region_supernodes = {0, 1};
  cfg.window = 50 * units::kMicrosecond;
  return cfg;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const std::vector<double> utils = {0.2, 0.3, 0.4};
  const int m = static_cast<int>(flags.get_int("m", 2500));
  const int tors_per_supernode = 4;
  const int servers_per_tor = 2;
  const int ports = 4 * tors_per_supernode + servers_per_tor;
  const Time window = flags.get_int("window_ms", 2) * units::kMillisecond;
  const auto hot_flows = static_cast<int>(flags.get_int("hot_flows", 512));
  const auto bg_flows = static_cast<int>(flags.get_int("bg_flows", 256));
  const std::int64_t bytes = flags.get_int("flow_bytes", 250'000);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const std::vector<int> scale_intra = {1, bench::intra_jobs_from(flags) > 1
                                               ? bench::intra_jobs_from(flags)
                                               : 2};

  std::printf("== bench_hybrid: packet/fluid co-simulation ==\n");
  std::printf(
      "calibration: dring(6,2,2) x utilization {0.2,0.3,0.4} | scale: "
      "dring(m=%d,n=%d) = %d switches, %d hot + %d bg flows\n\n",
      m, tors_per_supernode, m * tors_per_supernode, hot_flows, bg_flows);

  const std::size_t n_cells = utils.size() + scale_intra.size();
  core::Runner runner(bench::outer_jobs(flags));
  const std::string config_sig =
      "hybrid m=" + std::to_string(m) + " hot=" + std::to_string(hot_flows) +
      " bg=" + std::to_string(bg_flows) + " bytes=" + std::to_string(bytes) +
      " window=" + std::to_string(static_cast<long long>(window)) +
      " seed=" + std::to_string(seed) +
      " intra=" + std::to_string(scale_intra[1]);
  bench::ResumableSweep sweep("hybrid", flags, config_sig);
  const auto cells = bench::run_resumable(
      runner, n_cells, sweep, [&](std::size_t idx, util::CellContext& ctx) {
        if (idx < utils.size()) {
          // Calibration: hybrid vs pure packet on the same cell.
          auto cfg = calib_cfg(utils[idx]);
          cfg.fct.checkpoint = sweep.spec_for(idx, ctx);
          const auto d = topo::make_dring(6, 2, 2);
          const auto tm = workload::RackTm::uniform(d.graph);
          const auto hybrid =
              core::run_hybrid_experiment(d.graph, tm, cfg, &d.supernode_of);
          core::FctConfig pcfg = cfg.fct;
          pcfg.checkpoint = sim::CheckpointSpec{};
          const auto packet = core::run_fct_experiment(d.graph, tm, pcfg);
          auto c = bench::hybrid_cell(
              "calib util=" + Table::fmt(utils[idx], 1), hybrid);
          c.has_calib = true;
          c.packet_p50_ms = packet.median_ms();
          c.packet_p99_ms = packet.p99_ms();
          c.p50_ratio = packet.median_ms() > 0
                            ? hybrid.median_ms() / packet.median_ms()
                            : 0;
          c.p99_ratio =
              packet.p99_ms() > 0 ? hybrid.p99_ms() / packet.p99_ms() : 0;
          return c;
        }
        // Scale: the 10k-switch DRing, once per intra_jobs value.
        const int intra = scale_intra[idx - utils.size()];
        core::HybridConfig cfg;
        cfg.fct.seed = seed;
        cfg.fct.flowgen.window = window;
        cfg.fct.drain_factor = 10.0;
        cfg.fct.net.mode = sim::RoutingMode::kShortestUnion;
        cfg.fct.net.intra_jobs = intra;
        cfg.fct.net.table_jobs = bench::jobs_from(flags);
        cfg.fct.checkpoint = sweep.spec_for(idx, ctx);
        cfg.region_mode = core::RegionMode::kAuto;
        cfg.auto_region_switches = 2 * tors_per_supernode;
        const topo::DRing dring =
            topo::make_dring(m, tors_per_supernode, servers_per_tor, ports);
        const auto specs = bench::rng_tier_flows(
            dring.graph, seed, 2 * tors_per_supernode, hot_flows, bg_flows,
            bytes, window);
        const auto r = core::run_hybrid_experiment_flows(dring.graph, specs, cfg);
        return bench::hybrid_cell("scale " +
                                      std::to_string(m * tors_per_supernode) +
                                      "sw intra=" + std::to_string(intra),
                                  r);
      });

  bench::BenchJson json("hybrid", flags);
  if (sweep.journal().loaded() > 0) json.mark_resumed();
  Table t({"cell", "p50 (ms)", "p99 (ms)", "p50 ratio", "p99 ratio",
           "completed", "pkt events", "solves/skip"});
  for (const auto& c : cells) {
    json.add(c);
    t.add_row({c.label,
               c.status == "ok" ? Table::fmt(c.p50_ms) : "(" + c.status + ")",
               c.status == "ok" ? Table::fmt(c.p99_ms) : "-",
               c.has_calib ? Table::fmt(c.p50_ratio, 2) : "-",
               c.has_calib ? Table::fmt(c.p99_ratio, 2) : "-",
               std::to_string(c.completed) + "/" + std::to_string(c.flows),
               std::to_string(c.events),
               std::to_string(c.fluid_solves) + "/" +
                   std::to_string(c.fluid_solves_skipped)});
  }
  std::printf("%s", t.to_string().c_str());
  if (bench::interrupted()) {
    json.mark_partial();
    json.write();
    std::fprintf(stderr,
                 "interrupted: journal + checkpoints kept; rerun with "
                 "--resume to finish\n");
    return 130;
  }
  json.write();
  sweep.finish(n_cells);

  // Byte-identity gate: both scale cells must land on the same result_hash.
  const auto& a = cells[utils.size()];
  const auto& b = cells[utils.size() + 1];
  if (a.status == "ok" && b.status == "ok") {
    if (a.result_hash != b.result_hash) {
      std::fprintf(stderr,
                   "FAIL: scale cell hashes diverge across intra_jobs "
                   "(%llu vs %llu)\n",
                   static_cast<unsigned long long>(a.result_hash),
                   static_cast<unsigned long long>(b.result_hash));
      return 1;
    }
    std::printf("scale cells byte-identical across intra_jobs (hash %llu)\n",
                static_cast<unsigned long long>(a.result_hash));
  }
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
