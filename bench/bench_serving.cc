// Serving-layer benchmark: what QPS the spinelessd engine sustains on warm
// state, what request latency looks like at that load, and how the
// admission/degradation ladder behaves at 4x the sustainable rate
// (explicit `overloaded` sheds + fluid downgrades, bounded p99, no crash).
//
// Modes:
//   bench_serving                      closed-loop + overload phases,
//                                      writes results/BENCH_serving.json
//   bench_serving --trace=FILE         also dump the seed-deterministic
//                                      request mix to FILE and replay it
//                                      synchronously (cache exercised by
//                                      repeated bodies); the FNV hash of
//                                      the concatenated answers lands in
//                                      the JSON, so two runs — or a run
//                                      against a restored warm snapshot —
//                                      can be compared at a glance.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/engine.h"
#include "service/warm_state.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"

namespace spineless {
namespace {

using service::Engine;
using service::EngineConfig;
using service::ServiceConfig;
using service::WarmState;

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv1a(const std::string& s, std::uint64_t h) {
  for (unsigned char c : s) h = (h ^ c) * 0x100000001b3ULL;
  return h;
}

// The seed-deterministic request mix: what-if faults on random links
// (fail/flap), TM perturbations at varied load, affected queries, and
// deliberate repeats so the result cache sees hits.
std::vector<std::string> make_mix(const WarmState& warm, std::uint64_t seed,
                                  int n) {
  Rng rng(splitmix64(seed ^ 0x5e271ce0u));
  const auto links = static_cast<std::uint64_t>(warm.graph().num_links());
  std::vector<std::string> mix;
  mix.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::uint64_t id = static_cast<std::uint64_t>(i) + 1;
    const std::uint64_t pick = rng.uniform(10);
    std::string line;
    if (pick < 4) {
      const std::uint64_t link = rng.uniform(links);
      line = "{\"id\":" + std::to_string(id) +
             ",\"kind\":\"whatif_fault\",\"spec\":\"fail link=" +
             std::to_string(link) + " at=1ms\"}";
    } else if (pick < 6) {
      const std::uint64_t link = rng.uniform(links);
      line = "{\"id\":" + std::to_string(id) +
             ",\"kind\":\"whatif_fault\",\"spec\":\"flap link=" +
             std::to_string(link) + " down=1ms up=3ms\"}";
    } else if (pick < 8) {
      const char* tm = rng.uniform(2) == 0 ? "skewed" : "permutation";
      const double scale = 0.5 + 0.25 * static_cast<double>(rng.uniform(7));
      line = "{\"id\":" + std::to_string(id) +
             ",\"kind\":\"whatif_tm\",\"tm\":\"" + tm +
             "\",\"load_scale\":" + std::to_string(scale) +
             ",\"seed_salt\":" + std::to_string(1 + rng.uniform(4)) + "}";
    } else if (pick < 9) {
      line = "{\"id\":" + std::to_string(id) +
             ",\"kind\":\"affected\",\"link\":" +
             std::to_string(rng.uniform(links)) + ",\"down\":true}";
    } else if (!mix.empty()) {
      // Repeat an earlier body under a new id: a guaranteed cache hit.
      std::string prev = mix[rng.uniform(mix.size())];
      const std::size_t comma = prev.find(',');
      line = "{\"id\":" + std::to_string(id) + "," + prev.substr(comma + 1);
    } else {
      line = "{\"id\":" + std::to_string(id) + ",\"kind\":\"status\"}";
    }
    mix.push_back(std::move(line));
  }
  return mix;
}

// Blocks until `done` has been called for every submitted request.
class ResponseCollector {
 public:
  std::function<void(std::string)> callback(double* latency_slot) {
    const double t0 = wall_s();
    return [this, latency_slot, t0](const std::string& response) {
      std::lock_guard<std::mutex> l(mu_);
      if (latency_slot != nullptr) *latency_slot = wall_s() - t0;
      classify(response);
      ++received_;
      cv_.notify_all();
    };
  }

  void wait_for(std::size_t n) {
    std::unique_lock<std::mutex> l(mu_);
    cv_.wait(l, [&] { return received_ >= n; });
  }

  std::uint64_t ok = 0, shed = 0, degraded = 0, errors = 0;

 private:
  void classify(const std::string& r) {
    if (r.find("\"status\":\"ok\"") != std::string::npos) {
      ++ok;
      if (r.find("\"degraded\":true") != std::string::npos) ++degraded;
    } else if (r.find("\"status\":\"overloaded\"") != std::string::npos) {
      ++shed;
    } else {
      ++errors;
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t received_ = 0;
};

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(
      flags.get_int("seed", 1));

  ServiceConfig scfg;
  scfg.topology = flags.get("topology", "dring");
  scfg.scenario.seed = seed;
  std::printf("bench_serving: building warm state (%s)...\n",
              scfg.topology.c_str());
  const auto warm = WarmState::build(scfg);

  EngineConfig ecfg;
  ecfg.workers = static_cast<int>(flags.get_int("workers", 4));
  ecfg.queue_limit = static_cast<std::size_t>(flags.get_int("queue_limit", 32));
  ecfg.degrade_depth =
      static_cast<std::size_t>(flags.get_int("degrade_depth", 16));

  JsonWriter json;
  json.begin_object();
  json.kv("bench", "serving");
  json.kv("topology", scfg.topology);
  json.kv("switches", static_cast<std::int64_t>(warm->graph().num_switches()));
  json.kv("workers", ecfg.workers);
  json.kv("queue_limit", static_cast<std::uint64_t>(ecfg.queue_limit));

  // ---- Phase 1: closed-loop sustained throughput ----------------------
  // One in-flight request per worker: measures what the engine can sustain
  // without queueing. Latency percentiles come from per-request stamps.
  const int n_sustained = static_cast<int>(flags.get_int("requests", 200));
  double sustained_qps;
  {
    Engine engine(*warm, ecfg);
    const auto mix = make_mix(*warm, seed, n_sustained);
    std::vector<double> latency(mix.size(), 0);
    std::atomic<std::size_t> next{0};
    const double t0 = wall_s();
    std::vector<std::thread> clients;
    for (int c = 0; c < ecfg.workers; ++c) {
      clients.emplace_back([&] {
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= mix.size()) return;
          ResponseCollector one;
          engine.submit(mix[i], one.callback(&latency[i]));
          one.wait_for(1);
        }
      });
    }
    for (auto& t : clients) t.join();
    const double elapsed = wall_s() - t0;
    sustained_qps = static_cast<double>(mix.size()) / elapsed;

    Summary lat;
    for (double v : latency) lat.add(v * 1e3);
    const auto stats = engine.stats();
    std::printf(
        "sustained: %zu requests in %.2fs -> %.1f qps, "
        "p50 %.2fms p99 %.2fms, cache_hits %llu\n",
        mix.size(), elapsed, sustained_qps, lat.median(), lat.p99(),
        static_cast<unsigned long long>(stats.cache_hits));
    json.key("sustained");
    json.begin_object();
    json.kv("requests", static_cast<std::uint64_t>(mix.size()));
    json.kv("wall_s", elapsed);
    json.kv("qps", sustained_qps);
    json.kv("latency_p50_ms", lat.median());
    json.kv("latency_p99_ms", lat.p99());
    json.kv("cache_hits", stats.cache_hits);
    json.kv("degraded", stats.degraded);
    json.end_object();
  }

  // ---- Phase 2: open-loop overload at 4x the sustained rate ------------
  // The acceptance bar: explicit `overloaded`/degraded answers, bounded
  // p99, no crash — never an unbounded queue.
  {
    Engine engine(*warm, ecfg);
    const double target_qps = 4.0 * sustained_qps;
    const int n_overload =
        static_cast<int>(flags.get_int("overload_requests", 400));
    const auto mix = make_mix(*warm, splitmix64(seed ^ 0x4f4c), n_overload);
    std::vector<double> latency(mix.size(), 0);
    ResponseCollector all;
    const double gap_s = 1.0 / target_qps;
    const double t0 = wall_s();
    for (std::size_t i = 0; i < mix.size(); ++i) {
      engine.submit(mix[i], all.callback(&latency[i]));
      const double next_at = t0 + gap_s * static_cast<double>(i + 1);
      const double sleep_for = next_at - wall_s();
      if (sleep_for > 0)
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_for));
    }
    all.wait_for(mix.size());
    const double elapsed = wall_s() - t0;

    Summary lat;
    for (double v : latency) lat.add(v * 1e3);
    const auto stats = engine.stats();
    std::printf(
        "overload @%.0f qps: ok %llu (degraded %llu) shed %llu errors %llu, "
        "response p99 %.2fms\n",
        target_qps, static_cast<unsigned long long>(all.ok),
        static_cast<unsigned long long>(stats.degraded),
        static_cast<unsigned long long>(all.shed),
        static_cast<unsigned long long>(all.errors), lat.p99());
    json.key("overload");
    json.begin_object();
    json.kv("target_qps", target_qps);
    json.kv("requests", static_cast<std::uint64_t>(mix.size()));
    json.kv("wall_s", elapsed);
    json.kv("ok", all.ok);
    json.kv("shed", all.shed);
    json.kv("degraded", stats.degraded);
    json.kv("errors", all.errors);
    json.kv("response_p99_ms", lat.p99());
    json.end_object();
  }

  // ---- Phase 3: deterministic trace replay -----------------------------
  {
    Engine engine(*warm, ecfg);
    const int n_trace = static_cast<int>(flags.get_int("trace_requests", 60));
    const auto mix = make_mix(*warm, splitmix64(seed ^ 0x7ace), n_trace);
    const std::string trace_path = flags.get("trace", "");
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      for (const auto& line : mix) out << line << "\n";
    }
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const auto& line : mix) hash = fnv1a(engine.handle_line(line), hash);
    const auto stats = engine.stats();
    std::printf("trace: %zu requests, answers_hash %016llx, cache_hits %llu\n",
                mix.size(), static_cast<unsigned long long>(hash),
                static_cast<unsigned long long>(stats.cache_hits));
    json.key("trace");
    json.begin_object();
    json.kv("requests", static_cast<std::uint64_t>(mix.size()));
    json.kv("answers_hash", hash);
    json.kv("cache_hits", stats.cache_hits);
    json.end_object();
  }

  json.end_object();
  const std::string out = flags.get("json", "results/BENCH_serving.json");
  if (!write_json_file(out, json))
    std::fprintf(stderr, "bench_serving: cannot write %s\n", out.c_str());
  else
    std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
