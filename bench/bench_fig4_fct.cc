// Figure 4 reproduction (E1 in DESIGN.md): median and 99th-percentile flow
// completion times for the §5.2 traffic matrices across
//   leaf-spine (ecmp), DRing (shortest-union(2)), RRG (shortest-union(2)),
//   DRing (ecmp), RRG (ecmp).
//
// TMs are scaled so the leaf-spine spine layer runs at 30% utilization;
// R2R and C-S TMs are further scaled by (sending racks / total racks), as
// in §6.1. Expected shape (paper Fig. 4): flat topologies clearly better
// for skewed TMs, comparable for uniform; DRing+ECMP collapses on R2R and
// Shortest-Union(2) repairs it.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "util/table.h"
#include "workload/cs_model.h"
#include "workload/flows.h"

namespace spineless {
namespace {

using core::FctConfig;
using core::Scenario;
using topo::Graph;
using topo::NodeId;
using workload::RackTm;

struct TopoConfig {
  std::string name;
  const Graph* graph;
  sim::RoutingMode mode;
};

struct TmCase {
  std::string name;
  bool random_placement = false;
  // Builds the TM for a given (flat-aware) topology.
  std::function<RackTm(const Graph&)> make;
};

// R2R: on flat networks pick an *adjacent* rack pair — the case §4 calls
// out (one shortest path); on leaf-spine any leaf pair is equivalent.
RackTm r2r_tm(const Graph& g) {
  const NodeId a = 0;
  NodeId b = g.servers(g.neighbors(a)[0].neighbor) > 0
                 ? g.neighbors(a)[0].neighbor
                 : 1;
  if (g.servers(b) == 0) b = 1;
  return RackTm::rack_to_rack(g, a, b);
}

// C-S skewed per Fig. 4's caption: C = n/4 clients, S = n/16 servers.
RackTm cs_skewed_tm(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  const int n = g.total_servers();
  const auto sets = workload::make_cs_sets(g, n / 4, n / 16, rng);
  return workload::cs_rack_tm(g, sets);
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const Scenario s = bench::scenario_from(flags);
  bench::print_header("Figure 4: flow completion times", s, flags);

  const Graph ls = s.leaf_spine();
  const Graph rrg = s.rrg();
  const topo::DRing dring = s.dring();

  const std::vector<TopoConfig> configs = {
      {"leaf-spine (ecmp)", &ls, sim::RoutingMode::kEcmp},
      {"DRing (su2)", &dring.graph, sim::RoutingMode::kShortestUnion},
      {"RRG (su2)", &rrg, sim::RoutingMode::kShortestUnion},
      {"DRing (ecmp)", &dring.graph, sim::RoutingMode::kEcmp},
      {"RRG (ecmp)", &rrg, sim::RoutingMode::kEcmp},
  };

  const std::uint64_t seed = s.seed + 10;
  const std::vector<TmCase> tms = {
      {"A2A", false, [](const Graph& g) { return RackTm::uniform(g); }},
      {"R2R", false, r2r_tm},
      {"CS skewed", false,
       [&](const Graph& g) { return cs_skewed_tm(g, seed); }},
      {"FB skewed", false,
       [&](const Graph& g) { return RackTm::fb_like_skewed(g, seed); }},
      {"FB uniform", false,
       [&](const Graph& g) { return RackTm::fb_like_uniform(g, seed); }},
      {"FB skewed (RP)", true,
       [&](const Graph& g) { return RackTm::fb_like_skewed(g, seed); }},
      {"FB uniform (RP)", true,
       [&](const Graph& g) { return RackTm::fb_like_uniform(g, seed); }},
  };

  const double base_load =
      workload::spine_offered_load_bps(s.x, s.y, 10e9, /*utilization=*/0.3);
  const Time window =
      flags.get_int("window_ms", 2) * units::kMillisecond;
  // --seeds=N averages each cell over N workload seeds (default 1).
  const int seeds = static_cast<int>(flags.get_int("seeds", 1));

  std::vector<std::string> header{"TM"};
  for (const auto& c : configs) header.push_back(c.name);
  Table median(header), p99(header);

  // TMs are deterministic in (graph, seed); build them once up front so
  // the parallel cells share identical workloads per column (the paired-
  // comparison design: every topology column sees the same flows).
  std::vector<std::vector<RackTm>> built_tms;
  built_tms.reserve(tms.size());
  for (const auto& tm_case : tms) {
    std::vector<RackTm> per_config;
    per_config.reserve(configs.size());
    for (const auto& cfg_case : configs)
      per_config.push_back(tm_case.make(*cfg_case.graph));
    built_tms.push_back(std::move(per_config));
  }

  // One cell per (TM, topology, rep), fanned over the runner. The seed is
  // a pure function of the cell's identity (rep), never of scheduling, so
  // output is byte-identical for every --jobs value.
  const std::size_t ncfg = configs.size();
  const auto nseeds = static_cast<std::size_t>(seeds);
  const std::size_t ncells = tms.size() * ncfg * nseeds;
  core::Runner runner(bench::outer_jobs(flags));
  const auto results =
      bench::sweep(runner, ncells, [&](std::size_t idx) {
        const std::size_t ti = idx / (ncfg * nseeds);
        const std::size_t ci = (idx / nseeds) % ncfg;
        const auto rep = static_cast<std::uint64_t>(idx % nseeds);
        const Graph& g = *configs[ci].graph;
        const RackTm& tm = built_tms[ti][ci];
        FctConfig cfg;
        cfg.net.intra_jobs = bench::intra_jobs_from(flags);
        cfg.net.mode = configs[ci].mode;
        cfg.flowgen.window = window;
        cfg.flowgen.offered_load_bps =
            base_load * workload::participating_fraction(g, tm);
        cfg.random_placement = tms[ti].random_placement;
        cfg.seed = s.seed + 99 + rep * 1000;
        return core::run_fct_experiment(g, tm, cfg);
      });

  bench::BenchJson json("fig4_fct", flags);
  for (std::size_t ti = 0; ti < tms.size(); ++ti) {
    const auto& tm_case = tms[ti];
    std::vector<std::string> med_row{tm_case.name}, p99_row{tm_case.name};
    for (std::size_t ci = 0; ci < ncfg; ++ci) {
      double med_sum = 0, p99_sum = 0;
      std::size_t flows = 0, done = 0;
      long drops = 0;
      for (std::size_t rep = 0; rep < nseeds; ++rep) {
        const std::size_t idx = (ti * ncfg + ci) * nseeds + rep;
        const auto& res = results[idx].value;
        med_sum += res.median_ms();
        p99_sum += res.p99_ms();
        flows += res.flows;
        done += res.completed;
        drops += static_cast<long>(res.queue_drops);
        json.add_fct(tm_case.name + " | " + configs[ci].name + " | rep" +
                         std::to_string(rep),
                     results[idx]);
      }
      med_row.push_back(Table::fmt(med_sum / seeds));
      p99_row.push_back(Table::fmt(p99_sum / seeds));
      std::fprintf(stderr,
                   "  [%s | %-18s] flows=%zu done=%zu drops=%ld (x%d)\n",
                   tm_case.name.c_str(), configs[ci].name.c_str(), flows,
                   done, drops, seeds);
    }
    median.add_row(std::move(med_row));
    p99.add_row(std::move(p99_row));
  }

  std::printf("(a) Median FCT (ms)\n%s\n", median.to_string().c_str());
  std::printf("(b) 99th percentile FCT (ms)\n%s", p99.to_string().c_str());
  json.write();
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
