// F1 (DESIGN.md): simulator fidelity. Runs the Figure-4 workloads through
// both engines — packet-level TCP and the event-driven fluid model — with
// identical flows and paths, and reports FCT percentiles plus the speedup.
//
// Expected: medians agree within tens of percent (the fluid model has no
// slow start, so small flows finish "too fast" by roughly an RTT), tails
// diverge where loss/RTO dynamics dominate, and the ordering across
// topologies is preserved — justifying fluid for wide sweeps (Fig. 5) and
// packet for tail claims (Fig. 4).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "util/table.h"
#include "workload/flows.h"

namespace spineless {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header("Fidelity: packet-level TCP vs flow-level fluid",
                      s, flags);

  const topo::DRing dring = s.dring();
  const topo::Graph& g = dring.graph;
  const double base_load =
      workload::spine_offered_load_bps(s.x, s.y, 10e9, 0.3);

  struct TmCase {
    std::string name;
    workload::RackTm tm;
  };
  std::vector<TmCase> tms;
  tms.push_back({"uniform", workload::RackTm::uniform(g)});
  tms.push_back({"FB skewed", workload::RackTm::fb_like_skewed(g, s.seed)});
  tms.push_back({"permutation", workload::RackTm::permutation(g, s.seed)});

  Table t({"TM", "engine", "p50 (ms)", "p99 (ms)", "completed",
           "wall (ms)"});
  for (const auto& c : tms) {
    core::FctConfig cfg;
    cfg.net.mode = sim::RoutingMode::kShortestUnion;
    cfg.flowgen.window = 2 * units::kMillisecond;
    cfg.flowgen.offered_load_bps =
        base_load * workload::participating_fraction(g, c.tm);
    cfg.seed = s.seed + 9;

    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    const auto packet = core::run_fct_experiment(g, c.tm, cfg);
    const auto t1 = Clock::now();
    const auto fluid = core::run_fct_experiment_fluid(g, c.tm, cfg);
    const auto t2 = Clock::now();

    auto wall_ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    t.add_row({c.name, "packet TCP", Table::fmt(packet.median_ms()),
               Table::fmt(packet.p99_ms()),
               std::to_string(packet.completed) + "/" +
                   std::to_string(packet.flows),
               Table::fmt(wall_ms(t0, t1), 0)});
    t.add_row({c.name, "fluid", Table::fmt(fluid.median_ms()),
               Table::fmt(fluid.p99_ms()),
               std::to_string(fluid.completed) + "/" +
                   std::to_string(fluid.flows),
               Table::fmt(wall_ms(t1, t2), 0)});
    std::fprintf(stderr, "  %s done\n", c.name.c_str());
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
