// F1 (DESIGN.md): simulator fidelity. Runs the Figure-4 workloads through
// both engines — packet-level TCP and the event-driven fluid model — with
// identical flows and paths, and reports FCT percentiles plus the speedup.
//
// Expected: medians agree within tens of percent (the fluid model has no
// slow start, so small flows finish "too fast" by roughly an RTT), tails
// diverge where loss/RTO dynamics dominate, and the ordering across
// topologies is preserved — justifying fluid for wide sweeps (Fig. 5) and
// packet for tail claims (Fig. 4).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "util/table.h"
#include "workload/flows.h"

namespace spineless {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header("Fidelity: packet-level TCP vs flow-level fluid",
                      s, flags);

  const topo::DRing dring = s.dring();
  const topo::Graph& g = dring.graph;
  const double base_load =
      workload::spine_offered_load_bps(s.x, s.y, 10e9, 0.3);

  struct TmCase {
    std::string name;
    workload::RackTm tm;
  };
  std::vector<TmCase> tms;
  tms.push_back({"uniform", workload::RackTm::uniform(g)});
  tms.push_back({"FB skewed", workload::RackTm::fb_like_skewed(g, s.seed)});
  tms.push_back({"permutation", workload::RackTm::permutation(g, s.seed)});

  // (TM, engine) grid; even idx = packet TCP, odd = fluid. The per-cell
  // wall clock from the sweep is the number the speedup column reports.
  core::Runner runner(bench::outer_jobs(flags));
  const auto results =
      bench::sweep(runner, tms.size() * 2, [&](std::size_t idx) {
        const auto& c = tms[idx / 2];
        core::FctConfig cfg;
        cfg.net.intra_jobs = bench::intra_jobs_from(flags);
        cfg.net.mode = sim::RoutingMode::kShortestUnion;
        cfg.flowgen.window = 2 * units::kMillisecond;
        cfg.flowgen.offered_load_bps =
            base_load * workload::participating_fraction(g, c.tm);
        cfg.seed = s.seed + 9;
        return idx % 2 == 0
                   ? core::run_fct_experiment(g, c.tm, cfg)
                   : core::run_fct_experiment_fluid(g, c.tm, cfg);
      });

  bench::BenchJson json("fidelity", flags);
  Table t({"TM", "engine", "p50 (ms)", "p99 (ms)", "completed",
           "wall (ms)"});
  for (std::size_t i = 0; i < tms.size(); ++i) {
    for (const bool fluid : {false, true}) {
      const auto& cell = results[2 * i + (fluid ? 1 : 0)];
      const auto& r = cell.value;
      t.add_row({tms[i].name, fluid ? "fluid" : "packet TCP",
                 Table::fmt(r.median_ms()), Table::fmt(r.p99_ms()),
                 std::to_string(r.completed) + "/" +
                     std::to_string(r.flows),
                 Table::fmt(cell.wall_s * 1e3, 0)});
      json.add_fct(tms[i].name + (fluid ? " | fluid" : " | packet"), cell);
    }
    std::fprintf(stderr, "  %s done\n", tms[i].name.c_str());
  }
  std::printf("%s", t.to_string().c_str());
  json.write();
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
