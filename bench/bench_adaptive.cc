// Extension A2 (DESIGN.md; the paper's §7 "coarse-grained adaptive
// routing"): neither ECMP nor Shortest-Union(2) wins everywhere — ECMP's
// shorter paths help uniform traffic, SU(2)'s diversity rescues
// low-diversity patterns. The adaptive policy picks per TM from the
// demand-weighted shortest-path diversity, and should track the better of
// the two fixed schemes on every TM.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "core/adaptive.h"
#include "core/fct_experiment.h"
#include "util/table.h"
#include "workload/flows.h"

namespace spineless {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header("Extension: coarse-grained adaptive routing (DRing)",
                      s, flags);

  const topo::DRing dring = s.dring();
  const topo::Graph& g = dring.graph;
  const double base_load =
      workload::spine_offered_load_bps(s.x, s.y, 10e9, 0.3);

  struct TmCase {
    std::string name;
    workload::RackTm tm;
  };
  std::vector<TmCase> tms;
  tms.push_back({"uniform", workload::RackTm::uniform(g)});
  tms.push_back(
      {"adjacent R2R",
       workload::RackTm::rack_to_rack(g, 0, g.neighbors(0)[0].neighbor)});
  tms.push_back({"FB skewed", workload::RackTm::fb_like_skewed(g, s.seed)});
  tms.push_back(
      {"FB uniform", workload::RackTm::fb_like_uniform(g, s.seed)});

  // The adaptive policy is a cheap structural decision; resolve it per TM
  // up front so each (TM, scheme) cell is a plain fixed-mode experiment.
  std::vector<sim::RoutingMode> chosen;
  for (const auto& c : tms) chosen.push_back(core::choose_routing(g, c.tm));

  core::Runner runner(bench::outer_jobs(flags));
  const auto results =
      bench::sweep(runner, tms.size() * 3, [&](std::size_t idx) {
        const auto& c = tms[idx / 3];
        core::FctConfig cfg;
        cfg.net.intra_jobs = bench::intra_jobs_from(flags);
        cfg.flowgen.window = 2 * units::kMillisecond;
        cfg.flowgen.offered_load_bps =
            base_load * workload::participating_fraction(g, c.tm);
        cfg.seed = s.seed + 31;
        switch (idx % 3) {
          case 0: cfg.net.mode = sim::RoutingMode::kEcmp; break;
          case 1: cfg.net.mode = sim::RoutingMode::kShortestUnion; break;
          default: cfg.net.mode = chosen[idx / 3]; break;
        }
        return core::run_fct_experiment(g, c.tm, cfg);
      });

  bench::BenchJson json("adaptive", flags);
  Table t({"TM", "diversity", "concentration", "chosen", "ecmp p99 (ms)",
           "su2 p99 (ms)", "adaptive p99 (ms)"});
  for (std::size_t i = 0; i < tms.size(); ++i) {
    const auto& c = tms[i];
    const auto& ecmp = results[3 * i].value;
    const auto& su2 = results[3 * i + 1].value;
    const auto& adaptive = results[3 * i + 2].value;
    t.add_row({c.name, Table::fmt(core::weighted_path_diversity(g, c.tm), 1),
               Table::fmt(core::demand_concentration(g, c.tm), 2),
               chosen[i] == sim::RoutingMode::kEcmp ? "ecmp" : "su2",
               Table::fmt(ecmp.p99_ms()), Table::fmt(su2.p99_ms()),
               Table::fmt(adaptive.p99_ms())});
    std::fprintf(stderr, "  %s done\n", c.name.c_str());
    json.add_fct(c.name + " | ecmp", results[3 * i]);
    json.add_fct(c.name + " | su2", results[3 * i + 1]);
    json.add_fct(c.name + " | adaptive", results[3 * i + 2]);
  }
  std::printf("%s", t.to_string().c_str());
  json.write();
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
