// Ablation A1 (DESIGN.md): the K in Shortest-Union(K). The paper picks
// K = 2 as "a good tradeoff between path diversity and path length"; this
// bench quantifies that tradeoff on the DRing:
//   * structural: mean path count and mean path length of SU(K),
//   * behavioral: median/p99 FCT for uniform (stretch-sensitive) and
//     adjacent rack-to-rack (diversity-sensitive) traffic, K = 1..4.
// K=1 is plain ECMP shortest-path routing.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "routing/paths.h"
#include "util/table.h"
#include "workload/flows.h"

namespace spineless {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header("Ablation: Shortest-Union(K) sweep on DRing", s,
                      flags);

  const topo::DRing dring = s.dring();
  const topo::Graph& g = dring.graph;
  const int k_max = static_cast<int>(flags.get_int("k_max", 4));

  // Structural census over all ToR pairs.
  Table census({"K", "mean #paths", "mean path len", "max path len"});
  for (int k = 1; k <= k_max; ++k) {
    double count = 0, len = 0;
    int max_len = 0;
    std::int64_t pairs = 0, paths = 0;
    for (topo::NodeId a = 0; a < g.num_switches(); ++a) {
      for (topo::NodeId b = 0; b < g.num_switches(); ++b) {
        if (a == b) continue;
        const auto su = routing::shortest_union_paths(g, a, b, k, 4096);
        count += static_cast<double>(su.size());
        for (const auto& p : su) {
          len += routing::path_length(p);
          max_len = std::max(max_len, routing::path_length(p));
        }
        paths += static_cast<std::int64_t>(su.size());
        ++pairs;
      }
    }
    census.add_row({std::to_string(k),
                    Table::fmt(count / static_cast<double>(pairs), 1),
                    Table::fmt(len / static_cast<double>(paths), 2),
                    std::to_string(max_len)});
  }
  std::printf("Path census (all ToR pairs):\n%s\n",
              census.to_string().c_str());

  // Behavioral sweep.
  const double base_load =
      workload::spine_offered_load_bps(s.x, s.y, 10e9, 0.3);
  Table fct({"K", "uniform p50 (ms)", "uniform p99 (ms)", "adjacent R2R p50",
             "adjacent R2R p99"});
  const topo::NodeId adj = g.neighbors(0)[0].neighbor;
  for (int k = 1; k <= k_max; ++k) {
    core::FctConfig cfg;
    cfg.net.mode = sim::RoutingMode::kShortestUnion;
    cfg.net.su_k = k;
    cfg.flowgen.window = 2 * units::kMillisecond;
    cfg.seed = s.seed + 3;

    const auto uni_tm = workload::RackTm::uniform(g);
    cfg.flowgen.offered_load_bps = base_load;
    const auto uni = core::run_fct_experiment(g, uni_tm, cfg);

    const auto r2r_tm = workload::RackTm::rack_to_rack(g, 0, adj);
    cfg.flowgen.offered_load_bps =
        base_load * workload::participating_fraction(g, r2r_tm);
    const auto r2r = core::run_fct_experiment(g, r2r_tm, cfg);

    fct.add_row({std::to_string(k), Table::fmt(uni.median_ms()),
                 Table::fmt(uni.p99_ms()), Table::fmt(r2r.median_ms()),
                 Table::fmt(r2r.p99_ms())});
    std::fprintf(stderr, "  K=%d done\n", k);
  }
  std::printf("FCT sweep (DRing, Shortest-Union(K)):\n%s\n",
              fct.to_string().c_str());

  // Splitting ablation: equal-cost hashing vs path-count-weighted (WCMP-
  // style) splitting for K = 2.
  Table split({"SU(2) splitting", "uniform p50", "uniform p99",
               "adjacent R2R p50", "adjacent R2R p99"});
  for (const bool weighted : {false, true}) {
    core::FctConfig cfg;
    cfg.net.mode = sim::RoutingMode::kShortestUnion;
    cfg.net.weighted_su = weighted;
    cfg.flowgen.window = 2 * units::kMillisecond;
    cfg.seed = s.seed + 3;

    const auto uni_tm = workload::RackTm::uniform(g);
    cfg.flowgen.offered_load_bps = base_load;
    const auto uni = core::run_fct_experiment(g, uni_tm, cfg);
    const auto r2r_tm = workload::RackTm::rack_to_rack(g, 0, adj);
    cfg.flowgen.offered_load_bps =
        base_load * workload::participating_fraction(g, r2r_tm);
    const auto r2r = core::run_fct_experiment(g, r2r_tm, cfg);
    split.add_row({weighted ? "weighted (path counts)" : "equal-cost hash",
                   Table::fmt(uni.median_ms()), Table::fmt(uni.p99_ms()),
                   Table::fmt(r2r.median_ms()), Table::fmt(r2r.p99_ms())});
  }
  std::printf("%s", split.to_string().c_str());
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
