// Ablation A1 (DESIGN.md): the K in Shortest-Union(K). The paper picks
// K = 2 as "a good tradeoff between path diversity and path length"; this
// bench quantifies that tradeoff on the DRing:
//   * structural: mean path count and mean path length of SU(K),
//   * behavioral: median/p99 FCT for uniform (stretch-sensitive) and
//     adjacent rack-to-rack (diversity-sensitive) traffic, K = 1..4.
// K=1 is plain ECMP shortest-path routing.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "routing/paths.h"
#include "util/table.h"
#include "workload/flows.h"

namespace spineless {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header("Ablation: Shortest-Union(K) sweep on DRing", s,
                      flags);

  const topo::DRing dring = s.dring();
  const topo::Graph& g = dring.graph;
  const int k_max = static_cast<int>(flags.get_int("k_max", 4));

  core::Runner runner(bench::outer_jobs(flags));
  bench::BenchJson json("ablation_k", flags);

  // Structural census over all ToR pairs, one parallel cell per K.
  struct Census {
    double count = 0, len = 0;
    int max_len = 0;
    std::int64_t pairs = 0, paths = 0;
  };
  const auto census_cells = bench::sweep(
      runner, static_cast<std::size_t>(k_max), [&](std::size_t idx) {
        const int k = static_cast<int>(idx) + 1;
        Census c;
        for (topo::NodeId a = 0; a < g.num_switches(); ++a) {
          for (topo::NodeId b = 0; b < g.num_switches(); ++b) {
            if (a == b) continue;
            const auto su = routing::shortest_union_paths(g, a, b, k, 4096);
            c.count += static_cast<double>(su.size());
            for (const auto& p : su) {
              c.len += routing::path_length(p);
              c.max_len = std::max(c.max_len, routing::path_length(p));
            }
            c.paths += static_cast<std::int64_t>(su.size());
            ++c.pairs;
          }
        }
        return c;
      });

  Table census({"K", "mean #paths", "mean path len", "max path len"});
  for (int k = 1; k <= k_max; ++k) {
    const Census& c = census_cells[static_cast<std::size_t>(k - 1)].value;
    census.add_row({std::to_string(k),
                    Table::fmt(c.count / static_cast<double>(c.pairs), 1),
                    Table::fmt(c.len / static_cast<double>(c.paths), 2),
                    std::to_string(c.max_len)});
    bench::BenchJson::Cell jc;
    jc.label = "census K=" + std::to_string(k);
    jc.wall_s = census_cells[static_cast<std::size_t>(k - 1)].wall_s;
    json.add(std::move(jc));
  }
  std::printf("Path census (all ToR pairs):\n%s\n",
              census.to_string().c_str());

  // Behavioral sweeps: (K, TM) cells for the K sweep plus (weighted, TM)
  // cells for the splitting ablation, fanned out together.
  const double base_load =
      workload::spine_offered_load_bps(s.x, s.y, 10e9, 0.3);
  const topo::NodeId adj = g.neighbors(0)[0].neighbor;
  const auto uni_tm = workload::RackTm::uniform(g);
  const auto r2r_tm = workload::RackTm::rack_to_rack(g, 0, adj);
  const double r2r_load =
      base_load * workload::participating_fraction(g, r2r_tm);

  const auto nk = static_cast<std::size_t>(k_max);
  // Cells [0, 2*nk): K sweep; cells [2*nk, 2*nk+4): splitting ablation.
  const auto fct_cells =
      bench::sweep(runner, 2 * nk + 4, [&](std::size_t idx) {
        core::FctConfig cfg;
        cfg.net.intra_jobs = bench::intra_jobs_from(flags);
        cfg.net.mode = sim::RoutingMode::kShortestUnion;
        cfg.flowgen.window = 2 * units::kMillisecond;
        cfg.seed = s.seed + 3;
        bool r2r;
        if (idx < 2 * nk) {
          cfg.net.su_k = static_cast<int>(idx / 2) + 1;
          r2r = idx % 2 != 0;
        } else {
          cfg.net.weighted_su = (idx - 2 * nk) / 2 != 0;
          r2r = idx % 2 != 0;
        }
        cfg.flowgen.offered_load_bps = r2r ? r2r_load : base_load;
        return core::run_fct_experiment(g, r2r ? r2r_tm : uni_tm, cfg);
      });

  Table fct({"K", "uniform p50 (ms)", "uniform p99 (ms)", "adjacent R2R p50",
             "adjacent R2R p99"});
  for (int k = 1; k <= k_max; ++k) {
    const auto base = static_cast<std::size_t>(k - 1) * 2;
    const auto& uni = fct_cells[base].value;
    const auto& r2r = fct_cells[base + 1].value;
    fct.add_row({std::to_string(k), Table::fmt(uni.median_ms()),
                 Table::fmt(uni.p99_ms()), Table::fmt(r2r.median_ms()),
                 Table::fmt(r2r.p99_ms())});
    json.add_fct("K=" + std::to_string(k) + " uniform", fct_cells[base]);
    json.add_fct("K=" + std::to_string(k) + " r2r", fct_cells[base + 1]);
    std::fprintf(stderr, "  K=%d done\n", k);
  }
  std::printf("FCT sweep (DRing, Shortest-Union(K)):\n%s\n",
              fct.to_string().c_str());

  Table split({"SU(2) splitting", "uniform p50", "uniform p99",
               "adjacent R2R p50", "adjacent R2R p99"});
  for (const bool weighted : {false, true}) {
    const std::size_t base = 2 * nk + (weighted ? 2 : 0);
    const auto& uni = fct_cells[base].value;
    const auto& r2r = fct_cells[base + 1].value;
    const char* label =
        weighted ? "weighted (path counts)" : "equal-cost hash";
    split.add_row({label, Table::fmt(uni.median_ms()),
                   Table::fmt(uni.p99_ms()), Table::fmt(r2r.median_ms()),
                   Table::fmt(r2r.p99_ms())});
    json.add_fct(std::string(label) + " uniform", fct_cells[base]);
    json.add_fct(std::string(label) + " r2r", fct_cells[base + 1]);
  }
  std::printf("%s", split.to_string().c_str());
  json.write();
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
