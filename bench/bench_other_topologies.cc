// B3 (DESIGN.md; §7 "other static networks"): Slim Fly / Dragonfly-class
// low-diameter designs "have been shown to have high performance... we
// expect them to also have high performance at small scales but
// practicality might be limited since they require non-oblivious routing".
//
// This bench puts Dragonfly and Xpander next to leaf-spine, DRing, and RRG
// at small scale, each with the routing it can realistically run (hashed
// ECMP / Shortest-Union(2) — i.e., the deployable schemes the paper
// targets). Topology families quantize differently, so the table reports
// each instance's switch count, network degree, and hosts; the offered
// load is normalized per host.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "topo/analysis.h"
#include "util/table.h"
#include "workload/flows.h"

namespace spineless {
namespace {

struct Candidate {
  std::string name;
  topo::Graph graph;
  sim::RoutingMode mode;
  const char* routing;
};

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header(
      "Other static networks: Dragonfly and Xpander at small scale", s,
      flags);

  const double per_host_gbps = flags.get_double("per_host_gbps", 2.0);

  std::vector<Candidate> candidates;
  candidates.push_back({"leaf-spine", s.leaf_spine(),
                        sim::RoutingMode::kEcmp, "ecmp"});
  candidates.push_back({"DRing", s.dring().graph,
                        sim::RoutingMode::kShortestUnion, "su2"});
  candidates.push_back({"RRG", s.rrg(), sim::RoutingMode::kShortestUnion,
                        "su2"});
  // Xpander: match the RRG's mean network degree as closely as the
  // (d+1)-divisibility allows.
  {
    const topo::Graph rrg = s.rrg();
    int degree = 0;
    for (topo::NodeId n = 0; n < rrg.num_switches(); ++n)
      degree += rrg.network_degree(n);
    degree /= rrg.num_switches();
    const int lift = std::max(2, s.num_switches() / (degree + 1));
    const int servers = s.ports_per_switch() - degree;
    candidates.push_back({"Xpander",
                          topo::make_xpander(degree, lift, servers, s.seed),
                          sim::RoutingMode::kShortestUnion, "su2"});
  }
  // Dragonfly: groups = a*h + 1 balanced instance near the scenario size.
  {
    const int a = 4, h = 1;
    const int groups = a * h + 1;
    // Provision servers to NSR ~ 1 (like the DRing) rather than filling
    // every port: Dragonfly is a low-degree design, and loading 28 hosts
    // onto 4 network ports would only measure oversubscription.
    const int servers = (a - 1) + h;
    candidates.push_back({"Dragonfly", topo::make_dragonfly(groups, a, h,
                                                            servers),
                          sim::RoutingMode::kShortestUnion, "su2"});
  }

  // One cell per (candidate, TM); even cells are uniform, odd are skewed.
  core::Runner runner(bench::outer_jobs(flags));
  const auto results =
      bench::sweep(runner, candidates.size() * 2, [&](std::size_t idx) {
        const topo::Graph& g = candidates[idx / 2].graph;
        core::FctConfig cfg;
        cfg.net.intra_jobs = bench::intra_jobs_from(flags);
        cfg.net.mode = candidates[idx / 2].mode;
        cfg.flowgen.window = 2 * units::kMillisecond;
        cfg.flowgen.offered_load_bps =
            per_host_gbps * 1e9 * g.total_servers();
        cfg.seed = s.seed + 17;
        const auto tm = idx % 2 == 0
                            ? workload::RackTm::uniform(g)
                            : workload::RackTm::fb_like_skewed(g, s.seed + 2);
        return core::run_fct_experiment(g, tm, cfg);
      });

  bench::BenchJson json("other_topologies", flags);
  Table t({"topology", "routing", "switches", "net degree", "hosts",
           "NSR", "diameter", "uniform p50 (ms)", "uniform p99 (ms)",
           "skewed p50 (ms)", "skewed p99 (ms)"});
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    const topo::Graph& g = c.graph;
    const auto& uni = results[2 * i].value;
    const auto& skew = results[2 * i + 1].value;
    json.add_fct(c.name + " uniform", results[2 * i]);
    json.add_fct(c.name + " skewed", results[2 * i + 1]);

    double mean_degree = 0;
    for (topo::NodeId n = 0; n < g.num_switches(); ++n)
      mean_degree += g.network_degree(n);
    mean_degree /= g.num_switches();

    t.add_row({c.name, c.routing, std::to_string(g.num_switches()),
               Table::fmt(mean_degree, 1),
               std::to_string(g.total_servers()),
               Table::fmt(topo::network_server_ratio(g).mean, 2),
               std::to_string(topo::path_length_stats(g).diameter),
               Table::fmt(uni.median_ms()), Table::fmt(uni.p99_ms()),
               Table::fmt(skew.median_ms()), Table::fmt(skew.p99_ms())});
    std::fprintf(stderr, "  %s done\n", c.name.c_str());
  }
  std::printf("Offered load: %.1f Gbps per host\n\n%s", per_host_gbps,
              t.to_string().c_str());
  json.write();
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
