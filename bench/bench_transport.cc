// Transport ablation (extension): the paper runs standard TCP (§5.3); this
// bench checks how much of Figure 4's story depends on that choice by
// re-running the skewed and incast-heavy patterns with DCTCP (ECN marking
// at 20 packets + proportional window law) on the same DRing + SU(2).
// Expected: DCTCP trims tails (smaller queues) without changing who wins —
// the topology/routing conclusions are transport-robust.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "sim/incast_driver.h"
#include "util/table.h"
#include "workload/cs_model.h"
#include "workload/flows.h"

namespace spineless {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header("Transport ablation: TCP NewReno vs DCTCP (DRing, "
                      "Shortest-Union(2))", s, flags);

  const topo::DRing dring = s.dring();
  const topo::Graph& g = dring.graph;
  const double base_load =
      workload::spine_offered_load_bps(s.x, s.y, 10e9, 0.3);

  struct TmCase {
    std::string name;
    workload::RackTm tm;
  };
  std::vector<TmCase> tms;
  tms.push_back({"uniform", workload::RackTm::uniform(g)});
  tms.push_back({"FB skewed", workload::RackTm::fb_like_skewed(g, s.seed)});
  {
    Rng rng(s.seed + 4);
    const int n = g.total_servers();
    const auto sets = workload::make_cs_sets(g, n / 4, n / 16, rng);
    tms.push_back({"CS skewed (incast-y)", workload::cs_rack_tm(g, sets)});
  }

  Table t({"TM", "transport", "p50 (ms)", "p99 (ms)", "drops",
           "max queue (pkts)"});
  for (const auto& c : tms) {
    for (const bool dctcp : {false, true}) {
      core::FctConfig cfg;
      cfg.net.mode = sim::RoutingMode::kShortestUnion;
      cfg.net.ecn_threshold_bytes = dctcp ? 20 * sim::kDataPacketBytes : 0;
      cfg.tcp.dctcp = dctcp;
      cfg.flowgen.window = 2 * units::kMillisecond;
      cfg.flowgen.offered_load_bps =
          base_load * workload::participating_fraction(g, c.tm);
      cfg.seed = s.seed + 23;
      const auto r = core::run_fct_experiment(g, c.tm, cfg);
      t.add_row({c.name, dctcp ? "DCTCP" : "TCP NewReno",
                 Table::fmt(r.median_ms()), Table::fmt(r.p99_ms()),
                 std::to_string(r.queue_drops),
                 std::to_string(r.max_queue_bytes / sim::kDataPacketBytes)});
      std::fprintf(stderr, "  [%s | %s] done\n", c.name.c_str(),
                   dctcp ? "dctcp" : "reno");
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Partition-aggregate fan-in sweep: the incast case DCTCP was built for.
  std::printf("Partition-aggregate queries (30 KB/worker, shallow 40-pkt "
              "buffers), QCT:\n");
  Table q({"fan-in", "TCP p50 (ms)", "TCP p99 (ms)", "DCTCP p50 (ms)",
           "DCTCP p99 (ms)"});
  for (const int workers : {8, 16, 32, 64}) {
    double p50[2], p99[2];
    for (const bool dctcp : {false, true}) {
      sim::NetworkConfig net_cfg;
      net_cfg.queue_bytes = 40 * sim::kDataPacketBytes;
      net_cfg.ecn_threshold_bytes = dctcp ? 10 * sim::kDataPacketBytes : 0;
      net_cfg.mode = sim::RoutingMode::kShortestUnion;
      sim::TcpConfig tcp;
      tcp.dctcp = dctcp;
      sim::Simulator simulator;
      sim::Network net(g, net_cfg);
      sim::IncastDriver driver(net, tcp);
      Rng rng(s.seed + 6);
      const auto queries = workload::generate_incast_queries(
          g, /*queries=*/20, workers, 30'000, 2 * units::kMillisecond, rng);
      for (const auto& query : queries) driver.add_query(simulator, query);
      simulator.run_until(60 * units::kSecond);
      const auto qct = driver.qct_ms();
      p50[dctcp] = qct.median();
      p99[dctcp] = qct.p99();
      std::fprintf(stderr, "  [incast w=%d | %s] done=%zu/%zu\n", workers,
                   dctcp ? "dctcp" : "reno", driver.completed_queries(),
                   driver.num_queries());
    }
    q.add_row({std::to_string(workers), Table::fmt(p50[0]),
               Table::fmt(p99[0]), Table::fmt(p50[1]), Table::fmt(p99[1])});
  }
  std::printf("%s", q.to_string().c_str());
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
