// Transport ablation (extension): the paper runs standard TCP (§5.3); this
// bench checks how much of Figure 4's story depends on that choice by
// re-running the skewed and incast-heavy patterns with DCTCP (ECN marking
// at 20 packets + proportional window law) on the same DRing + SU(2).
// Expected: DCTCP trims tails (smaller queues) without changing who wins —
// the topology/routing conclusions are transport-robust.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "sim/incast_driver.h"
#include "util/table.h"
#include "workload/cs_model.h"
#include "workload/flows.h"

namespace spineless {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header("Transport ablation: TCP NewReno vs DCTCP (DRing, "
                      "Shortest-Union(2))", s, flags);

  const topo::DRing dring = s.dring();
  const topo::Graph& g = dring.graph;
  const double base_load =
      workload::spine_offered_load_bps(s.x, s.y, 10e9, 0.3);

  struct TmCase {
    std::string name;
    workload::RackTm tm;
  };
  std::vector<TmCase> tms;
  tms.push_back({"uniform", workload::RackTm::uniform(g)});
  tms.push_back({"FB skewed", workload::RackTm::fb_like_skewed(g, s.seed)});
  {
    Rng rng(s.seed + 4);
    const int n = g.total_servers();
    const auto sets = workload::make_cs_sets(g, n / 4, n / 16, rng);
    tms.push_back({"CS skewed (incast-y)", workload::cs_rack_tm(g, sets)});
  }

  core::Runner runner(bench::outer_jobs(flags));
  bench::BenchJson json("transport", flags);

  // FCT grid: (TM, transport) cells; even idx = NewReno, odd = DCTCP.
  const auto fct_cells =
      bench::sweep(runner, tms.size() * 2, [&](std::size_t idx) {
        const bool dctcp = idx % 2 != 0;
        const auto& c = tms[idx / 2];
        core::FctConfig cfg;
        cfg.net.intra_jobs = bench::intra_jobs_from(flags);
        cfg.net.mode = sim::RoutingMode::kShortestUnion;
        cfg.net.ecn_threshold_bytes =
            dctcp ? 20 * sim::kDataPacketBytes : 0;
        cfg.tcp.dctcp = dctcp;
        cfg.flowgen.window = 2 * units::kMillisecond;
        cfg.flowgen.offered_load_bps =
            base_load * workload::participating_fraction(g, c.tm);
        cfg.seed = s.seed + 23;
        return core::run_fct_experiment(g, c.tm, cfg);
      });

  Table t({"TM", "transport", "p50 (ms)", "p99 (ms)", "drops",
           "max queue (pkts)"});
  for (std::size_t i = 0; i < tms.size(); ++i) {
    for (const bool dctcp : {false, true}) {
      const auto& cell = fct_cells[2 * i + (dctcp ? 1 : 0)];
      const auto& r = cell.value;
      t.add_row({tms[i].name, dctcp ? "DCTCP" : "TCP NewReno",
                 Table::fmt(r.median_ms()), Table::fmt(r.p99_ms()),
                 std::to_string(r.queue_drops),
                 std::to_string(r.max_queue_bytes / sim::kDataPacketBytes)});
      std::fprintf(stderr, "  [%s | %s] done\n", tms[i].name.c_str(),
                   dctcp ? "dctcp" : "reno");
      json.add_fct(tms[i].name + (dctcp ? " | dctcp" : " | reno"), cell);
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // Partition-aggregate fan-in sweep: the incast case DCTCP was built for.
  // (fan-in, transport) cells; each builds its own simulator + network.
  std::printf("Partition-aggregate queries (30 KB/worker, shallow 40-pkt "
              "buffers), QCT:\n");
  const std::vector<int> fanins = {8, 16, 32, 64};
  struct QctCell {
    double p50 = 0, p99 = 0;
    std::size_t completed = 0, queries = 0;
  };
  const auto qct_cells =
      bench::sweep(runner, fanins.size() * 2, [&](std::size_t idx) {
        const int workers = fanins[idx / 2];
        const bool dctcp = idx % 2 != 0;
        sim::NetworkConfig net_cfg;
        net_cfg.queue_bytes = 40 * sim::kDataPacketBytes;
        net_cfg.ecn_threshold_bytes =
            dctcp ? 10 * sim::kDataPacketBytes : 0;
        net_cfg.mode = sim::RoutingMode::kShortestUnion;
        sim::TcpConfig tcp;
        tcp.dctcp = dctcp;
        sim::Simulator simulator;
        sim::Network net(g, net_cfg);
        sim::IncastDriver driver(net, tcp);
        Rng rng(s.seed + 6);
        const auto queries = workload::generate_incast_queries(
            g, /*queries=*/20, workers, 30'000, 2 * units::kMillisecond,
            rng);
        for (const auto& query : queries) driver.add_query(simulator, query);
        simulator.run_until(60 * units::kSecond);
        const auto qct = driver.qct_ms();
        return QctCell{qct.median(), qct.p99(), driver.completed_queries(),
                       driver.num_queries()};
      });

  Table q({"fan-in", "TCP p50 (ms)", "TCP p99 (ms)", "DCTCP p50 (ms)",
           "DCTCP p99 (ms)"});
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    const QctCell& reno = qct_cells[2 * i].value;
    const QctCell& dctcp = qct_cells[2 * i + 1].value;
    for (const bool d : {false, true}) {
      const auto& cell = qct_cells[2 * i + (d ? 1 : 0)];
      std::fprintf(stderr, "  [incast w=%d | %s] done=%zu/%zu\n", fanins[i],
                   d ? "dctcp" : "reno", cell.value.completed,
                   cell.value.queries);
      bench::BenchJson::Cell jc;
      jc.label = "incast w=" + std::to_string(fanins[i]) +
                 (d ? " | dctcp" : " | reno");
      jc.wall_s = cell.wall_s;
      json.add(std::move(jc));
    }
    q.add_row({std::to_string(fanins[i]), Table::fmt(reno.p50),
               Table::fmt(reno.p99), Table::fmt(dctcp.p50),
               Table::fmt(dctcp.p99)});
  }
  std::printf("%s", q.to_string().c_str());
  json.write();
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
