// Reactor-engine scaling sweep: events/s of the bench_micro scenario per
// shard count, written to BENCH_scaling.json.
//
// On this repo's reference container (1 CPU) every shard count runs
// cooperatively on one core, so the interesting number is *overhead*:
// events/s relative to serial must stay near 1.0 (the ROADMAP gate is
// <= 5% at intra_jobs=2). On a multi-core host the engine backs shards
// with real reactor threads and the figure of merit becomes *efficiency*
// = speedup / cores_used; the JSON reports it only when real cores back
// the shards (cores_used > 1), because "efficiency" of a cooperative
// single-core run is a category error. Target on >= 4 real cores:
// >= 3x speedup at 4 shards (documented here, CI-checked where hardware
// allows).
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sim/sharded_engine.h"
#include "sim/tcp.h"
#include "topo/builders.h"
#include "util/json.h"
#include "util/rng.h"

namespace spineless {
namespace {

struct Cell {
  int intra_jobs = 1;
  int cores_used = 1;  // reactor threads actually backing the shards
  bool pin_reactors = false;
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  sim::ShardedEngine::Metrics metrics;
};

Cell run_cell(int intra_jobs, bool pin_reactors) {
  constexpr int kTimedRuns = 3;
  Cell c;
  c.intra_jobs = intra_jobs;
  c.pin_reactors = pin_reactors;
  for (int run = 0; run < 1 + kTimedRuns; ++run) {
    const auto d = topo::make_dring(5, 2, 4);
    sim::NetworkConfig cfg;
    cfg.intra_jobs = intra_jobs;
    cfg.pin_reactors = pin_reactors;
    sim::Network net(d.graph, cfg);
    sim::FlowDriver driver(net, sim::TcpConfig{});
    Rng rng(7);
    sim::Simulator serial;
    std::unique_ptr<sim::ShardedEngine> sharded;
    if (net.sharded()) sharded = std::make_unique<sim::ShardedEngine>(net);
    sim::Simulator& front = sharded ? sharded->control() : serial;
    for (int i = 0; i < 50; ++i) {
      const auto src = static_cast<topo::HostId>(
          rng.uniform(static_cast<std::uint64_t>(d.graph.total_servers())));
      auto dst = static_cast<topo::HostId>(
          rng.uniform(static_cast<std::uint64_t>(d.graph.total_servers())));
      if (dst == src) dst = (dst + 1) % d.graph.total_servers();
      driver.add_flow(front, src, dst, 200'000, 0);
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (sharded) {
      sharded->run_until(units::kSecond);
    } else {
      serial.run_until(units::kSecond);
    }
    const double run_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (run == 0) continue;  // warmup
    if (c.wall_s == 0 || run_s < c.wall_s) {
      c.wall_s = run_s;
      c.events = sharded ? sharded->events_processed() : serial.events_processed();
      if (sharded) {
        c.metrics = sharded->metrics();
        c.cores_used = sharded->reactor_threads();
      }
    }
  }
  c.events_per_sec =
      c.wall_s > 0 ? static_cast<double>(c.events) / c.wall_s : 0;
  return c;
}

int run(const std::string& path, bool pin_reactors) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const int hw = hw_raw == 0 ? 1 : static_cast<int>(hw_raw);
  std::vector<Cell> cells;
  for (int intra : {1, 2, 4, 7})
    cells.push_back(run_cell(intra, pin_reactors));
  const double serial_rate = cells.front().events_per_sec;

  JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("scaling");
  w.key("scenario");
  w.value("simulator_event_throughput dring(5,2,4) 50 flows x 200KB, 1s");
  w.key("hardware_concurrency");
  w.value(static_cast<std::int64_t>(hw));
  w.key("target");
  w.value(">=3x speedup at intra_jobs=4 on >=4 real cores; "
          "<=5% overhead at intra_jobs=2 on 1 core");
  w.key("cells");
  w.begin_array();
  for (const Cell& c : cells) {
    w.begin_object();
    w.key("intra_jobs");
    w.value(static_cast<std::int64_t>(c.intra_jobs));
    w.key("cores_used");
    w.value(static_cast<std::int64_t>(c.cores_used));
    // Affinity is a pure scheduling hint (results are byte-identical either
    // way) but it changes the throughput figures, so each cell records it.
    w.kv("pin_reactors", c.pin_reactors);
    w.key("events");
    w.value(static_cast<std::int64_t>(c.events));
    w.key("wall_s");
    w.value(c.wall_s);
    w.key("events_per_sec");
    w.value(c.events_per_sec);
    if (serial_rate > 0) {
      w.key("vs_serial");
      w.value(c.events_per_sec / serial_rate);
    }
    if (c.cores_used > 1 && serial_rate > 0) {
      // Efficiency is meaningful only when real cores back the shards.
      w.key("efficiency");
      w.value(c.events_per_sec / serial_rate /
              static_cast<double>(c.cores_used));
    }
    if (c.intra_jobs > 1) {
      w.key("engine_windows");
      w.value(static_cast<std::int64_t>(c.metrics.windows));
      w.key("engine_ring_handoffs");
      w.value(static_cast<std::int64_t>(c.metrics.ring_handoffs));
      w.key("engine_max_ring_occupancy");
      w.value(static_cast<std::int64_t>(c.metrics.max_ring_occupancy));
      w.key("engine_ring_capacity");
      w.value(static_cast<std::int64_t>(c.metrics.ring_capacity));
      w.key("engine_ring_growths");
      w.value(static_cast<std::int64_t>(c.metrics.ring_growths));
      w.key("engine_spin_waits");
      w.value(static_cast<std::int64_t>(c.metrics.spin_waits));
      w.key("engine_central_plans");
      w.value(static_cast<std::int64_t>(c.metrics.central_plans));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  if (!write_json_file(path, w)) {
    std::fprintf(stderr, "bench_scaling: cannot write %s\n", path.c_str());
    return 1;
  }
  for (const Cell& c : cells) {
    std::printf("intra_jobs=%d  %8.2fM events/s  (%.3fx serial, %d core%s)\n",
                c.intra_jobs, c.events_per_sec / 1e6,
                serial_rate > 0 ? c.events_per_sec / serial_rate : 0.0,
                c.cores_used, c.cores_used == 1 ? "" : "s");
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) {
  std::string path = "BENCH_scaling.json";
  bool pin_reactors = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) path = argv[i] + 7;
    if (std::strcmp(argv[i], "--pin_reactors") == 0 ||
        std::strcmp(argv[i], "--pin_reactors=1") == 0)
      pin_reactors = true;
  }
  return spineless::run(path, pin_reactors);
}
