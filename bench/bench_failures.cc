// Extension A3 (DESIGN.md; the paper's §7 "impact of failures"): link
// failures in a flat network under the BGP+VRF scheme. For increasing
// random failure fractions:
//   * BGP reconvergence rounds after the batch of failures,
//   * reachability (host-VRF routes still present),
//   * surviving Shortest-Union path diversity (min/mean FIB paths),
//   * packet-level FCT impact using the post-failure topology,
//   * part 3: scripted FaultPlans (flap / gray / degrade) with in-band
//     BFD-style detection and graceful-degradation metrics.
#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench_common.h"
#include "core/fct_experiment.h"
#include "ctrl/bgp.h"
#include "fault/degradation.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "sim/sharded_engine.h"
#include "sim/tcp.h"
#include "util/table.h"
#include "workload/flows.h"

namespace spineless {
namespace {

int run(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::install_signal_handlers();
  const core::Scenario s = bench::scenario_from(flags);
  bench::print_header("Extension: impact of link failures (DRing + BGP/VRF)",
                      s, flags);

  const topo::DRing dring = s.dring();
  const topo::Graph& g = dring.graph;
  const double base_load =
      workload::spine_offered_load_bps(s.x, s.y, 10e9, 0.3);

  core::Runner runner(bench::outer_jobs(flags));
  bench::BenchJson json("failures", flags);

  // Each failure fraction is one independent cell: the random link sample,
  // BGP mesh, FIB census, and degraded-topology FCT all derive from the
  // fraction and scenario seed alone.
  const std::vector<double> fracs = {0.0, 0.02, 0.05, 0.10, 0.20};
  struct FailCell {
    std::size_t n_fail = 0;
    int rounds = 0;
    bool bgp_converged = true;
    std::int64_t reachable = 0, total_pairs = 0;
    double mean_paths = 0;
    int min_paths = 0;
    bool partitioned = false;
    double p99 = 0;
  };
  const auto frac_cells =
      bench::sweep(runner, fracs.size(), [&](std::size_t idx) {
        const double frac = fracs[idx];
        FailCell out;
        out.n_fail = static_cast<std::size_t>(
            frac * static_cast<double>(g.num_links()));
        Rng rng(s.seed + 77);
        std::set<topo::LinkId> dead;
        for (std::size_t i : rng.sample_without_replacement(
                 static_cast<std::size_t>(g.num_links()), out.n_fail))
          dead.insert(static_cast<topo::LinkId>(i));

        // Control plane: fail on the live BGP mesh and reconverge.
        ctrl::BgpVrfNetwork bgp(g, 2);
        bgp.converge();
        for (topo::LinkId l : dead) bgp.fail_link(l);
        // Flag form: a pathological batch reports non-convergence in the
        // table instead of killing the whole bench.
        out.rounds =
            out.n_fail == 0 ? 0 : bgp.converge(10'000, &out.bgp_converged);

        std::int64_t path_sum = 0;
        int min_paths = 1 << 30;
        for (topo::NodeId a = 0; a < g.num_switches(); ++a) {
          for (topo::NodeId b = 0; b < g.num_switches(); ++b) {
            if (a == b) continue;
            ++out.total_pairs;
            if (!bgp.reachable(a, b)) continue;
            ++out.reachable;
            const auto paths = bgp.fib_paths(a, b, 512);
            path_sum += static_cast<std::int64_t>(paths.size());
            min_paths = std::min(min_paths, static_cast<int>(paths.size()));
          }
        }
        out.min_paths = out.reachable ? min_paths : 0;
        out.mean_paths = out.reachable
                             ? static_cast<double>(path_sum) /
                                   static_cast<double>(out.reachable)
                             : 0.0;

        // Data plane on the degraded topology (if it stays connected).
        const topo::Graph degraded = topo::subgraph_without_links(
            g, std::vector<topo::LinkId>(dead.begin(), dead.end()));
        if (degraded.connected()) {
          core::FctConfig cfg;
          cfg.net.intra_jobs = bench::intra_jobs_from(flags);
          cfg.net.mode = sim::RoutingMode::kShortestUnion;
          cfg.flowgen.window = 2 * units::kMillisecond;
          cfg.flowgen.offered_load_bps = base_load;
          cfg.seed = s.seed + 13;
          out.p99 = core::run_fct_experiment(
                        degraded, workload::RackTm::uniform(degraded), cfg)
                        .p99_ms();
        } else {
          out.partitioned = true;
        }
        return out;
      });

  Table t({"failed links", "fraction", "BGP rounds", "reachable pairs",
           "min FIB paths", "mean FIB paths", "uniform p99 (ms)"});
  for (std::size_t i = 0; i < fracs.size(); ++i) {
    const FailCell& c = frac_cells[i].value;
    t.add_row({std::to_string(c.n_fail), Table::fmt(fracs[i], 2),
               c.bgp_converged ? std::to_string(c.rounds)
                               : "(not converged)",
               Table::fmt(100.0 * static_cast<double>(c.reachable) /
                              static_cast<double>(c.total_pairs),
                          1) +
                   "%",
               std::to_string(c.min_paths), Table::fmt(c.mean_paths, 1),
               c.partitioned ? "(partitioned)" : Table::fmt(c.p99)});
    std::fprintf(stderr, "  frac=%.2f done\n", fracs[i]);
    bench::BenchJson::Cell jc;
    jc.label = "frac=" + Table::fmt(fracs[i], 2);
    jc.wall_s = frac_cells[i].wall_s;
    json.add(std::move(jc));
  }
  std::printf("%s\n", t.to_string().c_str());
  if (bench::interrupted()) {
    json.mark_partial();
    json.write();
    return 130;
  }

  // Part 2: the convergence window at the data plane. A busy fabric loses
  // 2% of its links mid-experiment; the table sweeps how long the control
  // plane takes to install the post-failure routes (packets offered to
  // dead links blackhole until then).
  std::printf("Convergence-window sweep (2%% of links fail at t=0.5ms):\n");
  Table w({"reconvergence delay", "p50 (ms)", "p99 (ms)", "completed",
           "blackhole drops", "no-route drops"});
  const auto n_fail =
      static_cast<std::size_t>(0.02 * static_cast<double>(g.num_links()));
  const std::vector<Time> delays = {Time{0}, 100 * units::kMicrosecond,
                                    units::kMillisecond,
                                    10 * units::kMillisecond};
  struct WindowCell {
    double p50 = 0, p99 = 0;
    std::size_t completed = 0, flows = 0;
    std::int64_t queue_drops = 0, no_route_drops = 0;
  };
  const auto window_cells =
      bench::sweep(runner, delays.size(), [&](std::size_t idx) {
        const Time delay = delays[idx];
        Rng rng(s.seed + 78);
        workload::TmSampler sampler(g, workload::RackTm::uniform(g));
        workload::FlowGenConfig fg;
        fg.offered_load_bps = base_load;
        fg.window = 2 * units::kMillisecond;
        const auto flows = workload::generate_flows(sampler, fg, rng);

        sim::NetworkConfig net_cfg;
        net_cfg.mode = sim::RoutingMode::kShortestUnion;
        sim::Simulator simulator;
        sim::Network net(g, net_cfg);
        sim::FlowDriver driver(net, sim::TcpConfig{});
        for (const auto& f : flows)
          driver.add_flow(simulator, f.src, f.dst, f.bytes, f.start);
        for (std::size_t i : rng.sample_without_replacement(
                 static_cast<std::size_t>(g.num_links()), n_fail)) {
          net.schedule_link_failure(simulator,
                                    static_cast<topo::LinkId>(i),
                                    units::kMillisecond / 2, delay);
        }
        simulator.run_until(fg.window * 50);
        const auto fct = driver.fct_ms();
        return WindowCell{
            fct.median(),
            fct.p99(),
            driver.completed_flows(),
            driver.num_flows(),
            static_cast<std::int64_t>(net.stats().queue_drops),
            static_cast<std::int64_t>(net.stats().no_route_drops)};
      });

  for (std::size_t i = 0; i < delays.size(); ++i) {
    const WindowCell& c = window_cells[i].value;
    w.add_row({Table::fmt(units::to_millis(delays[i]), 1) + " ms",
               Table::fmt(c.p50), Table::fmt(c.p99),
               std::to_string(c.completed) + "/" + std::to_string(c.flows),
               std::to_string(c.queue_drops),
               std::to_string(c.no_route_drops)});
    std::fprintf(stderr, "  delay=%.1fms done\n",
                 units::to_millis(delays[i]));
    bench::BenchJson::Cell jc;
    jc.label = "delay=" + Table::fmt(units::to_millis(delays[i]), 1) + "ms";
    jc.wall_s = window_cells[i].wall_s;
    json.add(std::move(jc));
  }
  std::printf("%s", w.to_string().c_str());
  if (bench::interrupted()) {
    json.mark_partial();
    json.write();
    return 130;
  }

  // Part 3: scripted fault scenarios with *in-band* detection. Unlike
  // part 2's oracle (the control plane learns of the failure instantly and
  // only the route-install delay varies), here BFD-style hellos must
  // notice the fault: the measured outage = detection delay + incremental
  // reconvergence, gray links that pass hellos are never detected, and the
  // DegradationMonitor reports how gracefully goodput degrades/recovers.
  std::printf("\nFaultPlan scenarios (in-band BFD detection):\n");
  struct Scenario {
    const char* label;
    const char* spec;
  };
  const std::vector<Scenario> scenarios = {
      {"flap", "flap link=0 down=5ms up=10ms"},
      {"gray 1% drop", "gray link=0 drop=0.01 from=5ms until=15ms"},
      {"gray blackhole", "gray link=0 drop=1.0 from=5ms until=15ms"},
      {"corrupting link", "gray link=0 drop=0 corrupt=0.05 from=5ms until=15ms"},
      {"degraded port", "degrade link=0 rate=0.25 from=5ms until=15ms"},
      {"switch flap", "switch node=0 down=5ms up=10ms"},
  };
  const Time horizon = 35 * units::kMillisecond;
  // Part-3 cells run under the crash-safe machinery: each (Network,
  // FlowDriver, FaultInjector, DegradationMonitor) quartet checkpoints
  // through a CheckpointSession (parts registered in construction order),
  // advancing in segments that poll the watchdog/SIGINT hooks.
  bench::ResumableSweep sweep("failures", flags,
                              bench::base_config_sig(flags));
  const auto fault_cells = bench::run_resumable(
      runner, scenarios.size(), sweep,
      [&](std::size_t idx, util::CellContext& ctx) {
        Rng rng(s.seed + 79);
        workload::TmSampler sampler(g, workload::RackTm::uniform(g));
        workload::FlowGenConfig fg;
        fg.offered_load_bps = base_load;
        fg.window = 30 * units::kMillisecond;
        const auto flows = workload::generate_flows(sampler, fg, rng);

        sim::NetworkConfig net_cfg;
        net_cfg.mode = sim::RoutingMode::kShortestUnion;
        net_cfg.intra_jobs = bench::intra_jobs_from(flags);
        sim::Network net(g, net_cfg);
        sim::FlowDriver driver(net, sim::TcpConfig{});
        const auto plan =
            fault::FaultPlan::parse(scenarios[idx].spec, g, s.seed + idx);
        // Hellos share the data queues, so a congested port can eat them;
        // a conservative detect multiplier keeps transient bursts from
        // tripping sessions on healthy links.
        fault::FaultInjectorConfig inj_cfg;
        inj_cfg.hold_count = 5;
        fault::FaultInjector inj(net, plan, inj_cfg);
        fault::DegradationMonitor mon(net, 250 * units::kMicrosecond);

        sim::HashChain hash;
        hash.mix(s.seed)
            .mix(static_cast<std::uint64_t>(g.num_switches()))
            .mix(static_cast<std::uint64_t>(g.num_links()))
            .mix(static_cast<std::uint64_t>(idx))
            .mix(static_cast<std::uint64_t>(net_cfg.intra_jobs))
            .mix(static_cast<std::uint64_t>(horizon));
        sim::CheckpointSession session(net, hash.value());
        session.add(&driver);
        session.add(&inj);
        session.add(&mon);
        const sim::CheckpointSpec spec = sweep.spec_for(idx, ctx);

        const auto setup = [&](sim::Simulator& sim) {
          for (const auto& f : flows)
            driver.add_flow(sim, f.src, f.dst, f.bytes, f.start);
          inj.arm(sim, horizon);
          mon.start(sim, 0, 30 * units::kMillisecond);
        };
        // Segmented main loop, mirroring core::run_fct_experiment: restore
        // first (the reconstructed state above is discarded), then advance
        // boundary to boundary, snapshotting between segments.
        const auto drive = [&](auto& eng) {
          if (spec.resume && !spec.path.empty()) session.restore(spec.path, eng);
          const Time step =
              spec.interval > 0 ? spec.interval : std::max<Time>(1, horizon / 64);
          Time t = eng.now();
          while (t < horizon) {
            t = std::min<Time>(horizon, t + step);
            eng.run_until(t);
            if (spec.progress) spec.progress(eng.events_processed());
            if (spec.audit) {
              const sim::AuditReport report = session.audit(eng);
              if (!report.ok()) throw Error(report.to_string());
            }
            if (t >= horizon) break;
            if (!spec.path.empty()) session.save(spec.path, eng);
            if (spec.cancel && spec.cancel()) return false;
          }
          return true;
        };

        bench::BenchJson::Cell out;
        out.label = scenarios[idx].label;
        out.intra_jobs = net_cfg.intra_jobs;
        out.has_fault = true;
        if (net.sharded()) {
          sim::ShardedEngine engine(net);
          setup(engine.control());
          drive(engine);
          out.events = engine.events_processed();
        } else {
          sim::Simulator simulator;
          setup(simulator);
          drive(simulator);
          out.events = simulator.events_processed();
        }

        const auto rep = inj.report(horizon);
        out.blackhole_s = rep.blackhole_seconds;
        out.undetected_gray_windows = rep.undetected_gray_windows;
        out.fault_outages = rep.outages.size();
        // Characterize the cell by the fault-relevant outage: a physical
        // one if the plan caused any, else a detection on the faulted link
        // (gray scenarios). Congestion false alarms on other links are
        // only counted.
        const fault::FaultInjector::Outage* picked = nullptr;
        for (const auto& o : rep.outages) {
          if (o.t_down >= 0 && o.t_detected >= 0) {
            picked = &o;
            break;
          }
        }
        if (picked == nullptr) {
          for (const auto& o : rep.outages) {
            if (o.link == 0 && o.t_detected >= 0) {
              picked = &o;
              break;
            }
          }
        }
        if (picked != nullptr) {
          const Time base =
              picked->t_down >= 0 ? picked->t_down : picked->t_detected;
          out.detect_ms = units::to_millis(picked->t_detected - base);
          if (picked->t_routed_out >= 0)
            out.outage_ms = units::to_millis(picked->t_routed_out - base);
        }
        const auto stats = net.stats();
        out.blackhole_drops = stats.blackhole_drops;
        out.gray_drops = stats.gray_drops;
        out.corrupt_drops = stats.corrupt_drops;
        out.rescued_flows =
            fault::DegradationMonitor::flows_rescued_by_rto(driver);
        out.fault_completed = driver.completed_flows();
        out.fault_flows = driver.num_flows();
        // Pre window starts after the arrival ramp so the ratio compares
        // steady states.
        const double pre = mon.mean_goodput_bps(2 * units::kMillisecond,
                                                5 * units::kMillisecond);
        const double post = mon.mean_goodput_bps(20 * units::kMillisecond,
                                                 30 * units::kMillisecond);
        out.goodput_recovery = pre > 0 ? post / pre : 0.0;
        return out;
      });

  Table ft({"scenario", "blackhole (s)", "detect (ms)", "outage (ms)",
            "ctrl outages", "blackholed", "gray", "corrupt", "RTO-rescued",
            "completed", "goodput post/pre"});
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const bench::BenchJson::Cell& c = fault_cells[i];
    if (c.status != "ok") {
      ft.add_row({scenarios[i].label, "(" + c.status + ")", "-", "-", "-",
                  "-", "-", "-", "-", "-", "-"});
    } else {
      ft.add_row(
          {scenarios[i].label, Table::fmt(c.blackhole_s, 6),
           c.detect_ms < 0 ? "(undetected)" : Table::fmt(c.detect_ms, 2),
           c.outage_ms < 0 ? "-" : Table::fmt(c.outage_ms, 2),
           std::to_string(c.fault_outages),
           std::to_string(c.blackhole_drops), std::to_string(c.gray_drops),
           std::to_string(c.corrupt_drops),
           std::to_string(c.rescued_flows),
           std::to_string(c.fault_completed) + "/" +
               std::to_string(c.fault_flows),
           Table::fmt(c.goodput_recovery, 3)});
    }
    std::fprintf(stderr, "  %s done\n", scenarios[i].label);
    json.add(c);
  }
  std::printf("%s", ft.to_string().c_str());
  if (sweep.journal().loaded() > 0) json.mark_resumed();
  if (bench::interrupted()) {
    json.mark_partial();
    json.write();
    std::fprintf(stderr,
                 "interrupted: journal + checkpoints kept; rerun with "
                 "--resume to finish\n");
    return 130;
  }
  json.write();
  sweep.finish(scenarios.size());
  return 0;
}

}  // namespace
}  // namespace spineless

int main(int argc, char** argv) { return spineless::run(argc, argv); }
