// Incast study: how partition-aggregate queries behave on a flat fabric as
// fan-in grows, and what ECN/DCTCP buys. Uses the IncastDriver, the
// QueueMonitor, and both transports.
//
//   ./incast_study [--workers=32 --queries=10 --bytes=30000]
#include <cstdio>
#include <iostream>

#include "core/spineless.h"
#include "util/flags.h"
#include "util/table.h"

using namespace spineless;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int workers = static_cast<int>(flags.get_int("workers", 32));
  const int queries = static_cast<int>(flags.get_int("queries", 10));
  const auto bytes = flags.get_int("bytes", 30'000);

  const topo::DRing dring = topo::make_dring(8, 2, 8);
  const topo::Graph& g = dring.graph;
  std::printf("Fabric: DRing %d racks x %d hosts; %d queries, fan-in %d, "
              "%lld B per response.\n\n",
              g.num_switches(), g.servers(0), queries, workers,
              static_cast<long long>(bytes));

  Table t({"transport", "QCT p50 (ms)", "QCT p99 (ms)", "drops",
           "queue p99 (pkts)"});
  for (const bool dctcp : {false, true}) {
    sim::NetworkConfig cfg;
    cfg.mode = sim::RoutingMode::kShortestUnion;
    cfg.queue_bytes = 40 * sim::kDataPacketBytes;  // shallow buffers
    cfg.ecn_threshold_bytes = dctcp ? 10 * sim::kDataPacketBytes : 0;
    sim::TcpConfig tcp;
    tcp.dctcp = dctcp;

    sim::Simulator sim;
    sim::Network net(g, cfg);
    sim::IncastDriver driver(net, tcp);
    sim::QueueMonitor monitor(net, 20 * units::kMicrosecond);
    monitor.start(sim, 0, 20 * units::kMillisecond);

    Rng rng(7);
    for (const auto& q : workload::generate_incast_queries(
             g, queries, workers, bytes, 2 * units::kMillisecond, rng)) {
      driver.add_query(sim, q);
    }
    sim.run_until(60 * units::kSecond);

    const auto qct = driver.qct_ms();
    t.add_row({dctcp ? "DCTCP" : "TCP NewReno", Table::fmt(qct.median()),
               Table::fmt(qct.p99()),
               std::to_string(net.stats().queue_drops),
               Table::fmt(monitor.max_queue_pkts().p99(), 1)});
  }
  t.print(std::cout);
  std::printf("\nDCTCP absorbs the synchronized response burst at the "
              "marking threshold instead of\noverflowing the shallow "
              "buffer into retransmission timeouts.\n");
  return 0;
}
