// Quickstart: build the three topology families from equal equipment,
// inspect the §3.1 flatness metrics, and race them on a skewed workload.
//
//   ./quickstart [--x=12 --y=4]
//
// This is the 5-minute tour of the library: topo -> routing -> workload ->
// packet simulation.
#include <cstdio>
#include <iostream>

#include "core/spineless.h"
#include "util/flags.h"
#include "util/table.h"

using namespace spineless;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  core::Scenario s = core::Scenario::small();
  s.x = static_cast<int>(flags.get_int("x", s.x));
  s.y = static_cast<int>(flags.get_int("y", s.y));

  // 1. Equal-equipment topologies: the incumbent leaf-spine and two flat
  //    rewirings of the very same switches and servers.
  const topo::Graph leaf_spine = s.leaf_spine();
  const topo::Graph rrg = s.rrg();
  const topo::DRing dring = s.dring();

  std::printf("Equipment: %d switches x %d ports\n\n", s.num_switches(),
              s.ports_per_switch());
  Table overview({"topology", "racks w/ servers", "servers", "NSR",
                  "diameter"});
  for (const auto* g : {&leaf_spine, &rrg, &dring.graph}) {
    int racks = 0;
    for (topo::NodeId n = 0; n < g->num_switches(); ++n)
      racks += g->servers(n) > 0;
    overview.add_row({g->name(), std::to_string(racks),
                      std::to_string(g->total_servers()),
                      Table::fmt(topo::network_server_ratio(*g).mean, 2),
                      std::to_string(topo::path_length_stats(*g).diameter)});
  }
  overview.print(std::cout);
  std::printf("\nUDF(leaf-spine) = %.1f — a flat rewiring doubles the "
              "per-server network capacity at the ToRs (paper §3.1).\n\n",
              topo::leaf_spine_udf(s.x, s.y));

  // 2. A skewed workload: one tenth of the racks produce most traffic.
  // 3. Race the topologies in the packet-level simulator.
  Table race({"topology", "routing", "median FCT (ms)", "p99 FCT (ms)"});
  auto run = [&](const topo::Graph& g, sim::RoutingMode mode,
                 const char* routing_name) {
    const auto tm = workload::RackTm::fb_like_skewed(g, /*seed=*/7);
    core::FctConfig cfg;
    cfg.net.mode = mode;
    cfg.flowgen.offered_load_bps =
        workload::spine_offered_load_bps(s.x, s.y, 10e9, 0.3);
    cfg.flowgen.window = 2 * units::kMillisecond;
    const auto r = core::run_fct_experiment(g, tm, cfg);
    race.add_row({g.name(), routing_name, Table::fmt(r.median_ms()),
                  Table::fmt(r.p99_ms())});
  };
  run(leaf_spine, sim::RoutingMode::kEcmp, "ecmp");
  run(rrg, sim::RoutingMode::kShortestUnion, "shortest-union(2)");
  run(dring.graph, sim::RoutingMode::kShortestUnion, "shortest-union(2)");
  std::printf("Skewed (frontend-like) workload at 30%% spine "
              "utilization:\n");
  race.print(std::cout);
  std::printf("\nFlat networks mask the leaf-spine's 3:1 oversubscription "
              "when traffic is skewed.\n");
  return 0;
}
