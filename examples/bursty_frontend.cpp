// Scenario example: a frontend cluster where a rotating minority of racks
// bursts (cache fills, fan-out responses). The operator wants to know
// whether rewiring the leaf-spine into a flat network is worth it, and
// which routing to configure.
//
//   ./bursty_frontend [--bursting_racks=3 --burst_gbps=40]
//
// Demonstrates: workload::RackTm construction by hand, the adaptive
// routing policy, and interpreting FCT distributions.
#include <cstdio>
#include <iostream>

#include "core/spineless.h"
#include "util/flags.h"
#include "util/table.h"

using namespace spineless;

// A TM where `k` racks burst toward everyone else and a light uniform
// background hums underneath.
static workload::RackTm bursty_tm(const topo::Graph& g, int k,
                                  double burst_weight) {
  workload::RackTm tm(g.num_switches());
  std::vector<topo::NodeId> racks;
  for (topo::NodeId n = 0; n < g.num_switches(); ++n)
    if (g.servers(n) > 0) racks.push_back(n);
  for (std::size_t i = 0; i < racks.size(); ++i) {
    for (std::size_t j = 0; j < racks.size(); ++j) {
      if (i == j) continue;
      const bool hot = i < static_cast<std::size_t>(k);
      tm.at(racks[i], racks[j]) = hot ? burst_weight : 1.0;
    }
  }
  return tm;
}

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int bursting = static_cast<int>(flags.get_int("bursting_racks", 3));
  const double burst_gbps = flags.get_double("burst_gbps", 40.0);

  core::Scenario s = core::Scenario::small();
  const topo::Graph leaf_spine = s.leaf_spine();
  const topo::DRing dring = s.dring();

  std::printf("Frontend burst study: %d rack(s) bursting, total offered "
              "%.0f Gbps\n\n", bursting, burst_gbps * bursting);

  Table t({"topology", "routing", "p50 (ms)", "p99 (ms)", "drops"});
  auto run = [&](const topo::Graph& g, sim::RoutingMode mode,
                 const char* name) {
    const auto tm = bursty_tm(g, bursting, /*burst_weight=*/50.0);
    core::FctConfig cfg;
    cfg.net.mode = mode;
    // Total load: bursts plus ~20% background.
    cfg.flowgen.offered_load_bps = burst_gbps * 1e9 * bursting * 1.2;
    cfg.flowgen.window = 2 * units::kMillisecond;
    cfg.seed = 21;
    const auto r = core::run_fct_experiment(g, tm, cfg);
    t.add_row({g.name(), name, Table::fmt(r.median_ms()),
               Table::fmt(r.p99_ms()), std::to_string(r.queue_drops)});
  };

  run(leaf_spine, sim::RoutingMode::kEcmp, "ecmp");
  run(dring.graph, sim::RoutingMode::kEcmp, "ecmp");
  run(dring.graph, sim::RoutingMode::kShortestUnion, "shortest-union(2)");

  // What would the coarse-grained adaptive policy do?
  const auto tm = bursty_tm(dring.graph, bursting, 50.0);
  const auto choice = core::choose_routing(dring.graph, tm);
  t.print(std::cout);
  std::printf(
      "\nAdaptive policy on the DRing picks: %s\n"
      "(diversity=%.1f, demand concentration=%.2f)\n",
      choice == sim::RoutingMode::kEcmp ? "ecmp" : "shortest-union(2)",
      core::weighted_path_diversity(dring.graph, tm),
      core::demand_concentration(dring.graph, tm));
  return 0;
}
