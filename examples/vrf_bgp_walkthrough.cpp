// Deployment walkthrough for the §4 routing design: what a network
// engineer would actually configure and observe. Builds a small DRing,
// brings up the BGP+VRF mesh, prints one router's per-VRF forwarding state
// (the moral equivalent of `show ip route vrf ...`), then fails a link and
// watches reconvergence.
//
//   ./vrf_bgp_walkthrough [--m=6 --n=2 --k=2]
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/spineless.h"
#include "util/flags.h"

using namespace spineless;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int m = static_cast<int>(flags.get_int("m", 6));
  const int n = static_cast<int>(flags.get_int("n", 2));
  const int k = static_cast<int>(flags.get_int("k", 2));

  const topo::DRing dring = topo::make_dring(m, n, /*servers_per_tor=*/4);
  const topo::Graph& g = dring.graph;
  std::printf("DRing: %d supernodes x %d ToRs, %d network links.\n"
              "Each router runs %d VRFs; hosts attach to VRF %d; one AS per "
              "router;\neBGP sessions follow the paper's virtual-connection "
              "gadget with AS-path prepending as cost.\n\n",
              m, n, g.num_links(), k, k);

  ctrl::BgpVrfNetwork bgp(g, k);
  const int rounds = bgp.converge();
  std::printf("Converged in %d advertisement rounds; %zu routes installed "
              "across all RIBs.\n\n", rounds, bgp.installed_routes());

  // Show router 0's host-VRF forwarding state toward a few prefixes.
  std::printf("Router 0, VRF %d (host VRF) — BGP multipath FIB:\n", k);
  for (topo::NodeId dst : {g.neighbors(0)[0].neighbor,
                           static_cast<topo::NodeId>(g.num_switches() / 2),
                           static_cast<topo::NodeId>(g.num_switches() - 1)}) {
    if (dst == 0) continue;
    std::printf("  prefix rack%-3d  AS-path length %d, next hops:", dst,
                bgp.best_path_length(0, k, dst));
    for (const auto& e : bgp.fib(0, k, dst))
      std::printf("  (port->rack%d, VRF %d)", e.port.neighbor, e.next_vrf);
    std::printf("\n");
    const auto paths = bgp.fib_paths(0, dst);
    std::printf("    %zu usable path(s); Theorem 1 says max(L, K): L=%d -> "
                "cost %d\n", paths.size(),
                topo::bfs_distances(g, 0)[static_cast<std::size_t>(dst)],
                bgp.best_path_length(0, k, dst));
  }

  // Fail the direct link to our first neighbor and reconverge.
  const topo::NodeId victim = g.neighbors(0)[0].neighbor;
  const topo::LinkId link = g.neighbors(0)[0].link;
  std::printf("\n--- failing link rack0 <-> rack%d ---\n", victim);
  bgp.fail_link(link);
  const int rounds2 = bgp.converge();
  std::printf("Reconverged in %d rounds. rack0 -> rack%d now: AS-path "
              "length %d via %zu path(s)\n", rounds2, victim,
              bgp.best_path_length(0, k, victim),
              bgp.fib_paths(0, victim).size());
  for (const auto& path : bgp.fib_paths(0, victim)) {
    std::printf("    ");
    for (std::size_t i = 0; i < path.size(); ++i)
      std::printf("%srack%d", i ? " -> " : "", path[i]);
    std::printf("\n");
  }

  bgp.restore_link(link);
  bgp.converge();
  std::printf("\nLink restored; direct route back: AS-path length %d.\n",
              bgp.best_path_length(0, k, victim));

  // The paper: "the routing configurations at each router can be generated
  // by a simple script to avoid errors". Here is router 0's, ready for an
  // emulator; full_deployment_config() emits all of them.
  ctrl::ConfigGenOptions opts;
  opts.k = k;
  std::printf("\n--- generated configuration for r0 (excerpt) ---\n");
  const std::string cfg = ctrl::router_config(g, 0, opts);
  std::fwrite(cfg.data(), 1, std::min<std::size_t>(cfg.size(), 1500), stdout);
  if (cfg.size() > 1500)
    std::printf("... (%zu more bytes; see ctrl/config_gen.h)\n",
                cfg.size() - 1500);
  return 0;
}
