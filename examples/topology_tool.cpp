// Topology construction CLI: build any of the library's topology families
// from flags and emit DOT (for Graphviz), an edge list (for external
// tools), or an analysis report.
//
//   ./topology_tool --topology=dring --m=10 --n=2 --servers=8 --format=dot
//   ./topology_tool --topology=leafspine --x=24 --y=8 --format=stats
//   ./topology_tool --topology=rrg --switches=40 --degree=12 --format=edges
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "core/spineless.h"
#include "topo/export.h"
#include "util/flags.h"
#include "util/table.h"

using namespace spineless;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string kind = flags.get("topology", "dring");
  const std::string format = flags.get("format", "stats");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  std::unique_ptr<topo::Graph> graph;
  std::vector<int> groups;
  const bool has_groups = kind == "dring";
  if (kind == "leafspine") {
    graph = std::make_unique<topo::Graph>(topo::make_leaf_spine(
        static_cast<int>(flags.get_int("x", 12)),
        static_cast<int>(flags.get_int("y", 4))));
  } else if (kind == "dring") {
    auto d = topo::make_dring(static_cast<int>(flags.get_int("m", 8)),
                              static_cast<int>(flags.get_int("n", 2)),
                              static_cast<int>(flags.get_int("servers", 8)));
    groups = d.supernode_of;
    graph = std::make_unique<topo::Graph>(std::move(d.graph));
  } else if (kind == "rrg") {
    graph = std::make_unique<topo::Graph>(topo::make_rrg(
        static_cast<int>(flags.get_int("switches", 20)),
        static_cast<int>(flags.get_int("degree", 6)),
        static_cast<int>(flags.get_int("servers", 8)), seed));
  } else if (kind == "xpander") {
    graph = std::make_unique<topo::Graph>(topo::make_xpander(
        static_cast<int>(flags.get_int("degree", 6)),
        static_cast<int>(flags.get_int("lift", 4)),
        static_cast<int>(flags.get_int("servers", 8)), seed));
  } else if (kind == "dragonfly") {
    graph = std::make_unique<topo::Graph>(topo::make_dragonfly(
        static_cast<int>(flags.get_int("groups", 5)),
        static_cast<int>(flags.get_int("a", 4)),
        static_cast<int>(flags.get_int("h", 1)),
        static_cast<int>(flags.get_int("servers", 4))));
  } else {
    std::fprintf(stderr,
                 "unknown --topology=%s (leafspine|dring|rrg|xpander|"
                 "dragonfly)\n", kind.c_str());
    return 1;
  }
  const topo::Graph& g = *graph;

  if (format == "dot") {
    std::fputs(topo::to_dot(g, has_groups ? &groups : nullptr).c_str(),
               stdout);
  } else if (format == "edges") {
    std::fputs(topo::to_edge_list(g).c_str(), stdout);
  } else if (format == "stats") {
    const auto paths = topo::path_length_stats(g);
    const auto bounds = topo::uniform_throughput_bounds(g, 200, seed);
    Table t({"metric", "value"});
    t.add_row({"switches", std::to_string(g.num_switches())});
    t.add_row({"links", std::to_string(g.num_links())});
    t.add_row({"servers", std::to_string(g.total_servers())});
    t.add_row({"NSR (mean)",
               Table::fmt(topo::network_server_ratio(g).mean, 3)});
    t.add_row({"diameter", std::to_string(paths.diameter)});
    t.add_row({"mean path length", Table::fmt(paths.mean, 3)});
    t.add_row({"host-weighted mean path",
               Table::fmt(topo::mean_host_path_length(g), 3)});
    t.add_row({"bisection (upper bound)",
               std::to_string(topo::bisection_upper_bound(g, 200, seed))});
    t.add_row({"A2A throughput bound (distance)",
               Table::fmt(bounds.distance_bound, 3)});
    t.add_row({"A2A throughput bound (bisection)",
               Table::fmt(bounds.bisection_bound, 3)});
    t.print(std::cout);
  } else {
    std::fprintf(stderr, "unknown --format=%s (dot|edges|stats)\n",
                 format.c_str());
    return 1;
  }
  return 0;
}
