// Capacity planning with the fluid model: "if C of my hosts talk to S
// others, what per-flow throughput should I expect?" — the C-S model of
// §5.2 used as an operator tool. Compares the installed leaf-spine against
// a candidate DRing rewiring across a few canonical patterns and reports
// where each is NIC-bound vs fabric-bound.
//
//   ./capacity_planning [--x=24 --y=8]
#include <cstdio>
#include <iostream>

#include "core/spineless.h"
#include "util/flags.h"
#include "util/table.h"

using namespace spineless;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  core::Scenario s = core::Scenario::small();
  s.x = static_cast<int>(flags.get_int("x", 24));
  s.y = static_cast<int>(flags.get_int("y", 8));

  const topo::Graph leaf_spine = s.leaf_spine();
  const topo::DRing dring = s.dring();
  const int hosts = std::min(leaf_spine.total_servers(),
                             dring.graph.total_servers());

  struct Pattern {
    const char* name;
    int c, srv;
  };
  const Pattern patterns[] = {
      {"incast (32 -> 1)", 32, 1},
      {"outcast (1 -> 32)", 1, 32},
      {"rack burst (16 -> 1/2 DC)", 16, hosts / 2},
      {"shuffle (1/4 -> 1/4)", hosts / 4, hosts / 4},
      {"bisection (1/2 -> 1/2)", hosts / 2, hosts / 2 - 1},
  };

  std::printf("Capacity planning, %d-host fabric (per-flow max-min rates, "
              "Gbps):\n\n", hosts);
  Table t({"pattern", "C", "S", "leaf-spine ecmp", "DRing ecmp",
           "DRing su2", "DRing/LS"});
  for (const auto& p : patterns) {
    core::ThroughputConfig cfg;
    cfg.seed = 5;
    cfg.mode = sim::RoutingMode::kEcmp;
    const auto ls = core::run_cs_throughput(leaf_spine, p.c, p.srv, cfg);
    const auto dr_ecmp =
        core::run_cs_throughput(dring.graph, p.c, p.srv, cfg);
    cfg.mode = sim::RoutingMode::kShortestUnion;
    const auto dr_su2 =
        core::run_cs_throughput(dring.graph, p.c, p.srv, cfg);
    t.add_row({p.name, std::to_string(p.c), std::to_string(p.srv),
               Table::fmt(ls.mean_bps / 1e9, 2),
               Table::fmt(dr_ecmp.mean_bps / 1e9, 2),
               Table::fmt(dr_su2.mean_bps / 1e9, 2),
               Table::fmt(dr_su2.mean_bps / ls.mean_bps, 2)});
  }
  t.print(std::cout);
  std::printf(
      "\nReading the table: incast/outcast are NIC-bound (no topology can\n"
      "help); the skewed patterns show the flat network's ~%.0fx UDF gain;\n"
      "full-bisection shuffles stress the fabric itself.\n",
      topo::leaf_spine_udf(s.x, s.y));
  return 0;
}
