// Failure drill: what operators rehearse — a link dies under load. Shows
// the three-act structure: (1) the control plane reconverges (BGP rounds),
// (2) the data plane blackholes for the convergence window, (3) traffic
// settles on the surviving Shortest-Union paths.
//
//   ./failure_drill [--window_us=1000]
#include <cstdio>

#include "core/spineless.h"
#include "util/flags.h"

using namespace spineless;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const Time window =
      flags.get_int("window_us", 1000) * units::kMicrosecond;

  const topo::DRing dring = topo::make_dring(8, 2, 8);
  const topo::Graph& g = dring.graph;
  const topo::LinkId victim = g.neighbors(0)[0].link;
  std::printf("Fabric: DRing %d racks. Failing link rack%d <-> rack%d "
              "mid-run; reconvergence window %lld us.\n\n",
              g.num_switches(), g.link(victim).a, g.link(victim).b,
              static_cast<long long>(window / units::kMicrosecond));

  // Act 1: the control plane's view.
  ctrl::BgpVrfNetwork bgp(g, 2);
  bgp.converge();
  const auto before = bgp.fib_paths(g.link(victim).a, g.link(victim).b);
  bgp.fail_link(victim);
  const int rounds = bgp.converge();
  const auto after = bgp.fib_paths(g.link(victim).a, g.link(victim).b);
  std::printf("Control plane: %zu -> %zu usable paths between the "
              "endpoints, reconverged in %d eBGP rounds.\n",
              before.size(), after.size(), rounds);

  // Act 2 + 3: the data plane under a uniform load.
  sim::NetworkConfig cfg;
  cfg.mode = sim::RoutingMode::kShortestUnion;
  sim::Simulator sim;
  sim::Network net(g, cfg);
  sim::FlowDriver driver(net, sim::TcpConfig{});
  Rng rng(3);
  workload::TmSampler sampler(g, workload::RackTm::uniform(g));
  workload::FlowGenConfig fg;
  fg.offered_load_bps = 1.5e9 * g.total_servers();
  fg.window = 4 * units::kMillisecond;
  for (const auto& f : workload::generate_flows(sampler, fg, rng))
    driver.add_flow(sim, f.src, f.dst, f.bytes, f.start);

  net.schedule_link_failure(sim, victim, units::kMillisecond, window);
  sim.run_until(fg.window * 50);

  const auto fct = driver.fct_ms();
  std::printf(
      "Data plane: %zu/%zu flows completed; FCT p50 %.3f ms, p99 %.3f ms;\n"
      "%lld packets blackholed into the dead link before the new tables "
      "landed,\n%lld dropped for lack of any route.\n",
      driver.completed_flows(), driver.num_flows(), fct.median(), fct.p99(),
      static_cast<long long>(net.stats().queue_drops),
      static_cast<long long>(net.stats().no_route_drops));
  std::printf("\nTry --window_us=10000 to watch one RTO-backoff cycle "
              "appear in the tail.\n");
  return 0;
}
